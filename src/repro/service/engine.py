"""Concurrent query engine: workers, admission control, deadlines.

:class:`QueryEngine` turns a :class:`~repro.storage.tiled.TiledStandardStore`
into a servable endpoint:

* a fixed **worker thread pool** executes queries against the store
  through a :class:`~repro.service.pool.ShardedBufferPool` (installed
  into the store on construction, replacing its single-threaded pool);
* a **bounded admission queue** applies backpressure — beyond
  ``queue_depth`` waiting queries, :meth:`submit` raises
  :class:`AdmissionError` instead of growing without bound;
* every query carries an optional **deadline**; a query whose deadline
  has passed by the time a worker picks it up is answered with a
  timeout result, never silently executed late;
* :meth:`execute_batch` routes a batch through the
  :mod:`~repro.service.planner`: unique tiles are prefetched once (in
  block-id order, pinned for the duration of the batch), then all
  queries run against the warm shared pool;
* :meth:`close` drains in-flight work, stops the workers and flushes
  every dirty block back to the device.

Latency, admission and I/O observations land in a
:class:`~repro.service.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from queue import Empty, Full, Queue
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.fault.breaker import CircuitBreaker
from repro.fault.retry import Retrier, RetryPolicy
from repro.obs.heat import get_heat, heat_context
from repro.obs.tracer import get_tracer
from repro.service.metrics import MetricsRegistry
from repro.service.planner import BatchPlan, plan_batch
from repro.service.pool import ShardedBufferPool
from repro.service.queries import (
    DegradedValue,
    Query,
    execute_query,
    execute_query_degraded,
)

__all__ = [
    "AdmissionError",
    "EngineClosedError",
    "QuotaError",
    "QueryResult",
    "Submission",
    "BatchResult",
    "QueryEngine",
]

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"
STATUS_DEGRADED = "degraded"


class AdmissionError(RuntimeError):
    """Raised when the admission queue is full (backpressure)."""


class QuotaError(AdmissionError):
    """Raised when the engine's in-flight quota is exhausted.

    Distinguished from a full queue so the serving layer can answer a
    quota-throttled tenant with HTTP 429 while a globally overloaded
    queue still reads as backpressure."""


class EngineClosedError(AdmissionError):
    """Raised on submission to an engine that has been closed."""


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one query execution.

    ``error_bound`` is set only for :data:`STATUS_DEGRADED` results:
    the value was computed with one or more unreadable blocks
    zero-filled and is within ``error_bound`` (absolute) of the true
    answer.  ``attempts`` counts executions including retries.
    """

    status: str
    value: Any = None
    error: Optional[str] = None
    latency_s: float = 0.0
    error_bound: Optional[float] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def degraded(self) -> bool:
        return self.status == STATUS_DEGRADED


class Submission:
    """Handle for an admitted query (a minimal future).

    Carries its admission timestamp (for queue-wait accounting) and,
    when tracing is enabled, the span that was open at submission time
    — the worker executing the query parents its ``query`` span there,
    so a batch's queries nest under the batch even though they run on
    other threads.
    """

    __slots__ = (
        "query",
        "deadline",
        "submitted_s",
        "trace_parent",
        "_event",
        "_result",
    )

    def __init__(self, query: Query, deadline: Optional[float]) -> None:
        self.query = query
        self.deadline = deadline
        self.submitted_s = time.perf_counter()
        self.trace_parent = get_tracer().current_span()
        self._event = threading.Event()
        self._result: Optional[QueryResult] = None

    def _complete(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until the query completes; raises :class:`TimeoutError`
        if it has not completed within ``timeout`` seconds."""
        if not self._event.wait(timeout):
            raise TimeoutError("query has not completed yet")
        assert self._result is not None
        return self._result


@dataclass(frozen=True)
class BatchResult:
    """Results of a planned batch plus its plan and I/O accounting."""

    results: Tuple[QueryResult, ...]
    plan: BatchPlan
    block_reads: int
    wall_s: float

    @property
    def blocks_per_query(self) -> float:
        if not self.results:
            return 0.0
        return self.block_reads / len(self.results)


class QueryEngine:
    """Thread-pooled query service over one standard-form tiled store.

    Parameters
    ----------
    store:
        A :class:`TiledStandardStore` (anything exposing ``tiling``,
        ``tile_store``, ``stats`` and the region/point read methods).
    num_workers:
        Worker threads executing queries.
    queue_depth:
        Admission-queue bound; :meth:`submit` rejects beyond it.
    num_shards / pool_capacity:
        Sharded-pool geometry; capacity defaults to the store's
        previous pool capacity.
    default_timeout:
        Deadline (seconds) applied to queries submitted without one;
        ``None`` means no deadline.
    retry_policy:
        A :class:`~repro.fault.retry.RetryPolicy`; when set, transient
        ``IOError``\\ s during query execution and batch prefetch are
        retried with capped exponential backoff and jitter.  ``None``
        (the default) keeps the seed behaviour: first failure wins.
    breaker:
        A :class:`~repro.fault.breaker.CircuitBreaker`; when set,
        consecutive device failures trip it open and subsequent queries
        are answered immediately (degraded or shed) instead of queueing
        against a dead device.
    degraded_reads:
        When ``True``, a query whose retries are exhausted is re-run
        with unreadable blocks zero-filled, answering
        :data:`STATUS_DEGRADED` with an absolute ``error_bound``
        instead of :data:`STATUS_ERROR`.
    pool:
        An existing :class:`ShardedBufferPool` to serve through
        instead of building a private one — the multi-tenant serving
        layer hands every tenant engine the same pool (one shared
        memory budget over one shared device).  ``num_shards`` and
        ``pool_capacity`` are ignored when given.
    metric_labels:
        Labels stamped onto every counter/gauge/histogram series this
        engine records (e.g. ``{"tenant": "acme"}``), so engines
        sharing one :class:`MetricsRegistry` stay distinguishable.
    max_inflight:
        Admission quota: maximum queries admitted but not yet
        completed (queued + executing), across both :meth:`submit`
        and :meth:`execute_batch`.  Beyond it submissions raise
        :class:`QuotaError`.  ``None`` (default) means unbounded —
        the queue depth alone applies.
    degrade_on_deadline:
        When ``True`` and the store's device chain contains a
        :class:`~repro.service.deadline.DeadlineGuardDevice`, a query
        whose deadline expired in the queue is answered from resident
        blocks only (non-resident blocks zero-filled, sound
        ``error_bound``) instead of a bare timeout.
    """

    def __init__(
        self,
        store,
        *,
        num_workers: int = 4,
        queue_depth: int = 64,
        num_shards: int = 4,
        pool_capacity: Optional[int] = None,
        default_timeout: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        degraded_reads: bool = False,
        pool: Optional[ShardedBufferPool] = None,
        metric_labels: Optional[Mapping[str, object]] = None,
        max_inflight: Optional[int] = None,
        degrade_on_deadline: bool = False,
        read_only: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self._store = store
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._labels = dict(metric_labels) if metric_labels else None
        self._default_timeout = default_timeout
        self._retry_policy = retry_policy
        self._breaker = breaker
        self._degraded_reads = degraded_reads
        self._degrade_on_deadline = degrade_on_deadline
        self._read_only = read_only
        self._deadline_guard = None
        if degrade_on_deadline:
            device = store.tile_store.device
            while device is not None:
                if hasattr(device, "cache_only"):
                    self._deadline_guard = device
                    break
                device = getattr(device, "inner", None)
        if pool is not None:
            self._pool = pool
        else:
            capacity = (
                pool_capacity
                if pool_capacity is not None
                else store.tile_store.pool.capacity
            )
            self._pool = ShardedBufferPool(
                store.tile_store.device, capacity, num_shards=num_shards
            )
        store.tile_store.set_pool(self._pool)
        self._queue: "Queue[Optional[Submission]]" = Queue(maxsize=queue_depth)
        self._max_inflight = max_inflight
        self._inflight = 0  # guarded-by: _inflight_lock
        self._queue_hwm = 0  # guarded-by: _inflight_lock
        self._inflight_lock = threading.Lock()
        self._closed = False  # guarded-by: _close_lock
        self._close_lock = threading.Lock()
        self._drained = threading.Event()
        self._batch_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-query-{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # labeled metric accessors
    # ------------------------------------------------------------------

    def _counter(self, name: str):
        return self._metrics.counter(name, self._labels)

    def _gauge(self, name: str):
        return self._metrics.gauge(name, self._labels)

    def _histogram(self, name: str):
        return self._metrics.histogram(name, self._labels)

    def _heat_scope(self, query_class: str):
        """Tile-heat attribution scope for work done on this thread.

        Labels every :mod:`repro.obs.heat` touch with this engine's
        tenant (from ``metric_labels``) and the given query class.
        Contextvars do not cross thread boundaries, so worker threads
        and the batch-prefetch path each open their own scope.  A
        no-op when no heat recorder is installed.
        """
        if get_heat() is None:
            return nullcontext()
        tenant = str(self._labels.get("tenant", "")) if self._labels else ""
        return heat_context(tenant, query_class)

    # ------------------------------------------------------------------

    @property
    def store(self):
        return self._store

    @property
    def pool(self) -> ShardedBufferPool:
        return self._pool

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def closed(self) -> bool:
        # lint: allow=lock-discipline (racy bool read; close() drains stragglers that slip past it)
        return self._closed

    @property
    def read_only(self) -> bool:
        """Replica mode: the engine serves queries over blocks that
        replication replay writes beneath the pool, so it must never
        write back — :meth:`close` skips the flush, and promotion
        clears the flag before the first local update."""
        return self._read_only

    @read_only.setter
    def read_only(self, value: bool) -> None:
        self._read_only = bool(value)

    @property
    def queue_capacity(self) -> int:
        return self._queue.maxsize

    @property
    def queue_depth(self) -> int:
        """Current admission-queue occupancy (approximate)."""
        return self._queue.qsize()

    @property
    def queue_hwm(self) -> int:
        """Admission-queue high-water mark since construction."""
        with self._inflight_lock:
            return self._queue_hwm

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self._breaker

    @property
    def max_inflight(self) -> Optional[int]:
        return self._max_inflight

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def _deadline_for(self, timeout: Optional[float]) -> Optional[float]:
        if timeout is None:
            timeout = self._default_timeout
        if timeout is None:
            return None
        return time.monotonic() + timeout

    def _reserve_inflight(self, count: int) -> None:
        """Claim ``count`` in-flight slots or raise :class:`QuotaError`."""
        with self._inflight_lock:
            if (
                self._max_inflight is not None
                and self._inflight + count > self._max_inflight
            ):
                available = self._max_inflight - self._inflight
                self._counter("queries_throttled").inc(count)
                raise QuotaError(
                    f"in-flight quota exhausted ({self._inflight} of "
                    f"{self._max_inflight} in flight, {available} free, "
                    f"{count} requested)"
                )
            self._inflight += count

    def _release_inflight(self, count: int = 1) -> None:
        with self._inflight_lock:
            self._inflight = max(0, self._inflight - count)

    def _note_queue_depth(self) -> None:
        """Record the admission-queue high-water mark after an enqueue."""
        depth = self._queue.qsize()
        with self._inflight_lock:
            if depth > self._queue_hwm:
                self._queue_hwm = depth

    def submit(
        self, query: Query, timeout: Optional[float] = None
    ) -> Submission:
        """Admit one query; raises :class:`AdmissionError` when the
        queue is full, :class:`QuotaError` when the in-flight quota is
        exhausted and :class:`EngineClosedError` after :meth:`close`."""
        # lint: allow=lock-discipline (racy fast-path check; close() completes racing submissions)
        if self._closed:
            raise EngineClosedError("engine is closed")
        self._reserve_inflight(1)
        submission = Submission(query, self._deadline_for(timeout))
        try:
            self._queue.put_nowait(submission)
        except Full:
            self._release_inflight(1)
            self._counter("queries_rejected").inc()
            raise AdmissionError(
                f"admission queue is full ({self._queue.maxsize} waiting)"
            ) from None
        self._note_queue_depth()
        self._counter("queries_submitted").inc()
        return submission

    def run(self, query: Query, timeout: Optional[float] = None) -> QueryResult:
        """Submit one query and wait for its result."""
        return self.submit(query, timeout=timeout).result()

    def _enqueue_blocking(self, submission: Submission) -> None:
        """Batch-path admission: wait for space instead of rejecting.

        The caller (:meth:`execute_batch`) has already reserved the
        batch's in-flight slots up front."""
        self._queue.put(submission)
        self._note_queue_depth()
        self._counter("queries_submitted").inc()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            submission = self._queue.get()
            if submission is None:  # shutdown sentinel
                self._queue.task_done()
                return
            error = "query dropped without completion"
            try:
                self._execute(submission)
            except Exception as exc:  # pragma: no cover - defensive
                # _execute already converts query failures to results;
                # anything escaping it is an engine bug.  The worker
                # must survive it and the waiter must still get an
                # answer.
                self._counter("worker_faults").inc()
                error = f"internal worker error: {exc!r}"
            finally:
                if not submission.done():
                    submission._complete(
                        QueryResult(status=STATUS_ERROR, error=error)
                    )
                self._release_inflight(1)
                self._queue.task_done()

    def _execute(self, submission: Submission) -> None:
        wait_s = time.perf_counter() - submission.submitted_s
        self._histogram("admission_wait_s").record(wait_s)
        with self._heat_scope(
            type(submission.query).__name__
        ), get_tracer().span(
            "query",
            parent=submission.trace_parent,
            kind=type(submission.query).__name__,
            admission_wait_s=wait_s,
        ) as span:
            if (
                submission.deadline is not None
                and time.monotonic() >= submission.deadline
            ):
                degraded = self._answer_from_cache(submission.query)
                if degraded is not None:
                    self._counter("queries_deadline_degraded").inc()
                    self._counter("queries_served").inc()
                    if degraded.status == STATUS_DEGRADED:
                        self._counter("queries_degraded").inc()
                    span.set(status=degraded.status)
                    if degraded.error:
                        span.set(error=degraded.error)
                    submission._complete(degraded)
                    return
                self._counter("queries_timed_out").inc()
                span.set(status=STATUS_TIMEOUT)
                submission._complete(
                    QueryResult(
                        status=STATUS_TIMEOUT,
                        error="deadline expired before execution",
                    )
                )
                return
            started = time.perf_counter()
            try:
                result = self._serve(submission.query)
            except Exception as exc:  # queries must never kill a worker
                result = QueryResult(status=STATUS_ERROR, error=str(exc))
            latency = time.perf_counter() - started
            result = QueryResult(
                status=result.status,
                value=result.value,
                error=result.error,
                latency_s=latency,
                error_bound=result.error_bound,
                attempts=result.attempts,
            )
            self._histogram("query_latency_s").record(latency)
            if result.status == STATUS_OK:
                self._counter("queries_served").inc()
            elif result.status == STATUS_DEGRADED:
                self._counter("queries_served").inc()
                self._counter("queries_degraded").inc()
            else:
                self._counter("query_errors").inc()
            span.set(status=result.status)
            if result.error:
                span.set(error=result.error)
            if result.attempts > 1:
                span.set(attempts=result.attempts)
            submission._complete(result)

    def _serve(self, query: Query) -> QueryResult:
        """Execute one query through the resilience ladder.

        Ladder: circuit-breaker admission -> (retried) execution ->
        degraded re-execution.  Returns a :class:`QueryResult` without
        latency (the caller stamps it).
        """
        breaker = self._breaker
        if breaker is not None and not breaker.allow():
            # Device is presumed down: answer without touching it
            # rather than piling retries onto a dead disk.
            self._counter("queries_shed").inc()
            if self._degraded_reads:
                outcome = execute_query_degraded(self._store, query)
                if isinstance(outcome, DegradedValue):
                    return QueryResult(
                        status=STATUS_DEGRADED,
                        value=outcome.value,
                        error="circuit breaker open; unreadable blocks "
                        "zero-filled",
                        error_bound=outcome.error_bound,
                    )
                return QueryResult(status=STATUS_OK, value=outcome)
            return QueryResult(
                status=STATUS_ERROR,
                error="circuit breaker open: device unavailable",
                attempts=0,
            )
        attempts = 1
        retrier = (
            Retrier(self._retry_policy)
            if self._retry_policy is not None
            else None
        )
        try:
            if retrier is not None:
                value = retrier.call(
                    lambda: execute_query(self._store, query)
                )
            else:
                value = execute_query(self._store, query)
        except IOError as exc:
            if retrier is not None and retrier.retries:
                attempts += retrier.retries
                self._counter("io_retries").inc(retrier.retries)
            if breaker is not None:
                breaker.on_failure()
            if self._degraded_reads:
                outcome = execute_query_degraded(self._store, query)
                attempts += 1
                if isinstance(outcome, DegradedValue):
                    return QueryResult(
                        status=STATUS_DEGRADED,
                        value=outcome.value,
                        error=str(exc),
                        error_bound=outcome.error_bound,
                        attempts=attempts,
                    )
                # The fault was transient and the degraded pass read
                # everything after all: a full-fidelity answer.
                if breaker is not None:
                    breaker.on_success()
                return QueryResult(
                    status=STATUS_OK, value=outcome, attempts=attempts
                )
            return QueryResult(
                status=STATUS_ERROR, error=str(exc), attempts=attempts
            )
        if retrier is not None and retrier.retries:
            attempts += retrier.retries
            self._counter("io_retries").inc(retrier.retries)
        if breaker is not None:
            breaker.on_success()
        return QueryResult(status=STATUS_OK, value=value, attempts=attempts)

    def _answer_from_cache(self, query: Query) -> Optional[QueryResult]:
        """Deadline-expired fallback: answer from resident blocks only.

        Requires ``degrade_on_deadline`` and a
        :class:`~repro.service.deadline.DeadlineGuardDevice` in the
        store's device chain.  The query is re-run inside the guard's
        ``cache_only`` scope: buffer-pool hits answer normally, device
        reads are refused, refused blocks are zero-filled and the
        degraded collector prices them into a sound ``error_bound``.
        Returns ``None`` when the machinery is unavailable or the
        cache-only pass itself fails — the caller falls back to a bare
        timeout.
        """
        if not self._degrade_on_deadline or self._deadline_guard is None:
            return None
        started = time.perf_counter()
        try:
            with self._deadline_guard.cache_only():
                outcome = execute_query_degraded(self._store, query)
        except Exception:  # fall back to the plain timeout answer
            return None
        latency = time.perf_counter() - started
        if isinstance(outcome, DegradedValue):
            return QueryResult(
                status=STATUS_DEGRADED,
                value=outcome.value,
                error="deadline expired; non-resident blocks zero-filled",
                latency_s=latency,
                error_bound=outcome.error_bound,
            )
        # Every block the query needed was already resident: the
        # cache-only pass produced a full-fidelity answer for free.
        return QueryResult(
            status=STATUS_OK, value=outcome, latency_s=latency
        )

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------

    def execute_batch(
        self,
        queries: Sequence[Query],
        timeout: Optional[float] = None,
    ) -> BatchResult:
        """Plan, prefetch and execute a batch of queries.

        The planner dedups block fetches across the batch; every unique
        materialised tile is faulted in exactly once (in block-id
        order) and pinned so concurrent eviction cannot force a
        re-read mid-batch.  Admission is cooperative — the batch waits
        for queue space rather than rejecting its own queries.
        """
        # lint: allow=lock-discipline (racy fast-path check; close() completes racing submissions)
        if self._closed:
            raise EngineClosedError("engine is closed")
        queries = list(queries)
        # The whole batch's quota is reserved up front (all-or-nothing:
        # a tenant cannot half-admit a batch and starve its own tail).
        # Workers release one slot per executed submission; anything
        # never enqueued is released on the failure path below.
        self._reserve_inflight(len(queries))
        enqueued = 0
        tracer = get_tracer()
        started = time.perf_counter()
        before = self._store.stats.snapshot()
        try:
            with tracer.span("batch", queries=len(queries)) as batch_span:
                with tracer.span("batch.plan"):
                    plan = plan_batch(self._store, queries)
                batch_span.set(
                    unique_tiles=plan.num_unique_tiles,
                    tile_refs=plan.total_tile_refs,
                    dedup_ratio=plan.dedup_ratio,
                )
                self._counter("batches_planned").inc()
                self._counter("planned_tile_refs").inc(
                    plan.total_tile_refs
                )
                self._counter("planned_unique_tiles").inc(
                    plan.num_unique_tiles
                )
                with self._batch_lock:  # one prefetch wave at a time
                    with tracer.span("batch.prefetch") as prefetch_span:
                        pinned = self._prefetch(plan)
                        prefetch_span.set(blocks=len(pinned))
                    try:
                        submissions = []
                        for query in queries:
                            submission = Submission(
                                query, self._deadline_for(timeout)
                            )
                            self._enqueue_blocking(submission)
                            enqueued += 1
                            submissions.append(submission)
                        results = tuple(sub.result() for sub in submissions)
                    finally:
                        for block_id in pinned:
                            self._pool.unpin(block_id)
        except BaseException:
            self._release_inflight(len(queries) - enqueued)
            raise
        wall = time.perf_counter() - started
        delta = self._store.stats.delta_since(before)
        self._histogram("batch_wall_s").record(wall)
        if queries:
            self._histogram("blocks_per_query").record(
                delta.block_reads / len(queries)
            )
        return BatchResult(
            results=results,
            plan=plan,
            block_reads=delta.block_reads,
            wall_s=wall,
        )

    def _prefetch(self, plan: BatchPlan) -> List[int]:
        """Fault in and pin every materialised tile of the plan once.

        Never-written tiles have no block (they read as zeros for
        free) and are skipped.  Returns the pinned block ids.
        """
        tile_store = self._store.tile_store
        block_ids = sorted(
            block_id
            for block_id in (
                tile_store.block_of(key) for key in plan.unique_tiles
            )
            if block_id is not None
        )
        pinned: List[int] = []
        with self._heat_scope("prefetch"):
            for block_id in block_ids:
                try:
                    if self._retry_policy is not None:
                        retrier = Retrier(self._retry_policy)
                        retrier.call(
                            lambda b=block_id: self._pool.fetch_and_pin(b)
                        )
                        if retrier.retries:
                            self._counter("io_retries").inc(
                                retrier.retries
                            )
                    else:
                        self._pool.fetch_and_pin(block_id)
                except IOError:
                    # Prefetch is an optimisation: an unreadable block
                    # is skipped here and handled by the per-query
                    # resilience ladder (retry / degrade) when a query
                    # touches it.
                    self._counter("prefetch_skipped").inc()
                    continue
                pinned.append(block_id)
        self._counter("blocks_prefetched").inc(len(pinned))
        return pinned

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain queued work, stop the workers, flush dirty blocks.

        Idempotent and concurrent-safe: exactly one caller performs the
        shutdown; every other (and every later) caller blocks until the
        drain and flush have finished, so "close returned" always means
        "workers stopped, dirty blocks flushed".  Queries already
        admitted are executed (or timed out against their deadlines);
        new submissions are refused with :class:`EngineClosedError`; a
        submission racing the shutdown is completed with a definite
        error result rather than left hanging.
        """
        with self._close_lock:
            if self._closed:
                self._drained.wait()
                return
            self._closed = True
        for __ in self._workers:
            self._queue.put(None)  # sentinels drain after pending work
        for worker in self._workers:
            worker.join()
        # A submit() that passed the closed check concurrently with the
        # flag flip may have enqueued behind the sentinels; its waiter
        # must still get a definite answer.
        while True:
            try:
                straggler = self._queue.get_nowait()
            except Empty:
                break
            if straggler is not None:
                if not straggler.done():
                    straggler._complete(
                        QueryResult(
                            status=STATUS_ERROR, error="engine is closed"
                        )
                    )
                self._release_inflight(1)
            self._queue.task_done()
        if not self._read_only:
            with get_tracer().span("engine.flush"):
                self._pool.flush()
        self._drained.set()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def refresh_gauges(self) -> None:
        """Publish current pool/queue occupancy into the registry's
        gauges (pull-style: refreshed on snapshot rather than on every
        pool operation, which would serialise the hot path)."""
        self._gauge("pool_resident_blocks").set(self._pool.resident)
        self._gauge("pool_dirty_blocks").set(self._pool.dirty)
        self._gauge("pool_pinned_blocks").set(self._pool.pinned)
        self._gauge("admission_queue_depth").set(self._queue.qsize())
        with self._inflight_lock:
            inflight = self._inflight
            queue_hwm = self._queue_hwm
        self._gauge("queries_inflight").set(inflight)
        self._gauge("admission_queue_hwm").set(queue_hwm)
        if self._max_inflight is not None:
            self._gauge("inflight_quota").set(self._max_inflight)
        if self._breaker is not None:
            self._gauge("breaker_state").set(
                self._breaker.state_code
            )

    def snapshot(self) -> dict:
        """Engine metrics + sharded-pool stats in one dict."""
        self.refresh_gauges()
        report = self._metrics.snapshot()
        report["pool"] = self._pool.snapshot()
        if self._breaker is not None:
            report["breaker"] = self._breaker.snapshot()
        device = self._store.tile_store.device
        while device is not None:  # walk wrapper layers to the injector
            fault_counts = getattr(device, "fault_counts", None)
            if fault_counts is not None:
                report["faults"] = fault_counts()
                break
            device = getattr(device, "inner", None)
        device = self._store.tile_store.device
        while device is not None:  # walk to the mmap arena, if any
            telemetry = getattr(device, "telemetry", None)
            if callable(telemetry):
                report["arena"] = telemetry()
                break
            device = getattr(device, "inner", None)
        # Read the series through the labeled accessors: under
        # metric_labels the snapshot keys carry a `{...}` suffix, so a
        # bare-name lookup would silently miss them.
        refs = self._counter("planned_tile_refs").value
        unique = self._counter("planned_unique_tiles").value
        report["planner_dedup_ratio"] = refs / unique if unique else 1.0
        with self._inflight_lock:
            report["admission_queue_hwm"] = self._queue_hwm
            report["queries_inflight"] = self._inflight
        return report
