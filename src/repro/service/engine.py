"""Concurrent query engine: workers, admission control, deadlines.

:class:`QueryEngine` turns a :class:`~repro.storage.tiled.TiledStandardStore`
into a servable endpoint:

* a fixed **worker thread pool** executes queries against the store
  through a :class:`~repro.service.pool.ShardedBufferPool` (installed
  into the store on construction, replacing its single-threaded pool);
* a **bounded admission queue** applies backpressure — beyond
  ``queue_depth`` waiting queries, :meth:`submit` raises
  :class:`AdmissionError` instead of growing without bound;
* every query carries an optional **deadline**; a query whose deadline
  has passed by the time a worker picks it up is answered with a
  timeout result, never silently executed late;
* :meth:`execute_batch` routes a batch through the
  :mod:`~repro.service.planner`: unique tiles are prefetched once (in
  block-id order, pinned for the duration of the batch), then all
  queries run against the warm shared pool;
* :meth:`close` drains in-flight work, stops the workers and flushes
  every dirty block back to the device.

Latency, admission and I/O observations land in a
:class:`~repro.service.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from queue import Empty, Full, Queue
from typing import Any, List, Optional, Sequence, Tuple

from repro.obs.tracer import get_tracer
from repro.service.metrics import MetricsRegistry
from repro.service.planner import BatchPlan, plan_batch
from repro.service.pool import ShardedBufferPool
from repro.service.queries import Query, execute_query

__all__ = [
    "AdmissionError",
    "QueryResult",
    "Submission",
    "BatchResult",
    "QueryEngine",
]

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


class AdmissionError(RuntimeError):
    """Raised when the admission queue is full (backpressure)."""


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one query execution."""

    status: str
    value: Any = None
    error: Optional[str] = None
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class Submission:
    """Handle for an admitted query (a minimal future).

    Carries its admission timestamp (for queue-wait accounting) and,
    when tracing is enabled, the span that was open at submission time
    — the worker executing the query parents its ``query`` span there,
    so a batch's queries nest under the batch even though they run on
    other threads.
    """

    __slots__ = (
        "query",
        "deadline",
        "submitted_s",
        "trace_parent",
        "_event",
        "_result",
    )

    def __init__(self, query: Query, deadline: Optional[float]) -> None:
        self.query = query
        self.deadline = deadline
        self.submitted_s = time.perf_counter()
        self.trace_parent = get_tracer().current_span()
        self._event = threading.Event()
        self._result: Optional[QueryResult] = None

    def _complete(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until the query completes; raises :class:`TimeoutError`
        if it has not completed within ``timeout`` seconds."""
        if not self._event.wait(timeout):
            raise TimeoutError("query has not completed yet")
        assert self._result is not None
        return self._result


@dataclass(frozen=True)
class BatchResult:
    """Results of a planned batch plus its plan and I/O accounting."""

    results: Tuple[QueryResult, ...]
    plan: BatchPlan
    block_reads: int
    wall_s: float

    @property
    def blocks_per_query(self) -> float:
        if not self.results:
            return 0.0
        return self.block_reads / len(self.results)


class QueryEngine:
    """Thread-pooled query service over one standard-form tiled store.

    Parameters
    ----------
    store:
        A :class:`TiledStandardStore` (anything exposing ``tiling``,
        ``tile_store``, ``stats`` and the region/point read methods).
    num_workers:
        Worker threads executing queries.
    queue_depth:
        Admission-queue bound; :meth:`submit` rejects beyond it.
    num_shards / pool_capacity:
        Sharded-pool geometry; capacity defaults to the store's
        previous pool capacity.
    default_timeout:
        Deadline (seconds) applied to queries submitted without one;
        ``None`` means no deadline.
    """

    def __init__(
        self,
        store,
        *,
        num_workers: int = 4,
        queue_depth: int = 64,
        num_shards: int = 4,
        pool_capacity: Optional[int] = None,
        default_timeout: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self._store = store
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._default_timeout = default_timeout
        capacity = (
            pool_capacity
            if pool_capacity is not None
            else store.tile_store.pool.capacity
        )
        self._pool = ShardedBufferPool(
            store.tile_store.device, capacity, num_shards=num_shards
        )
        store.tile_store.set_pool(self._pool)
        self._queue: "Queue[Optional[Submission]]" = Queue(maxsize=queue_depth)
        self._closed = False
        self._close_lock = threading.Lock()
        self._batch_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-query-{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------

    @property
    def store(self):
        return self._store

    @property
    def pool(self) -> ShardedBufferPool:
        return self._pool

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def _deadline_for(self, timeout: Optional[float]) -> Optional[float]:
        if timeout is None:
            timeout = self._default_timeout
        if timeout is None:
            return None
        return time.monotonic() + timeout

    def submit(
        self, query: Query, timeout: Optional[float] = None
    ) -> Submission:
        """Admit one query; raises :class:`AdmissionError` when the
        queue is full and :class:`RuntimeError` after :meth:`close`."""
        if self._closed:
            raise RuntimeError("engine is closed")
        submission = Submission(query, self._deadline_for(timeout))
        try:
            self._queue.put_nowait(submission)
        except Full:
            self._metrics.counter("queries_rejected").inc()
            raise AdmissionError(
                f"admission queue is full ({self._queue.maxsize} waiting)"
            ) from None
        self._metrics.counter("queries_submitted").inc()
        return submission

    def run(self, query: Query, timeout: Optional[float] = None) -> QueryResult:
        """Submit one query and wait for its result."""
        return self.submit(query, timeout=timeout).result()

    def _enqueue_blocking(self, submission: Submission) -> None:
        """Batch-path admission: wait for space instead of rejecting."""
        self._queue.put(submission)
        self._metrics.counter("queries_submitted").inc()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            submission = self._queue.get()
            if submission is None:  # shutdown sentinel
                self._queue.task_done()
                return
            self._execute(submission)
            self._queue.task_done()

    def _execute(self, submission: Submission) -> None:
        wait_s = time.perf_counter() - submission.submitted_s
        self._metrics.histogram("admission_wait_s").record(wait_s)
        with get_tracer().span(
            "query",
            parent=submission.trace_parent,
            kind=type(submission.query).__name__,
            admission_wait_s=wait_s,
        ) as span:
            if (
                submission.deadline is not None
                and time.monotonic() >= submission.deadline
            ):
                self._metrics.counter("queries_timed_out").inc()
                span.set(status=STATUS_TIMEOUT)
                submission._complete(
                    QueryResult(
                        status=STATUS_TIMEOUT,
                        error="deadline expired before execution",
                    )
                )
                return
            started = time.perf_counter()
            try:
                value = execute_query(self._store, submission.query)
            except Exception as exc:  # queries must never kill a worker
                latency = time.perf_counter() - started
                self._metrics.counter("query_errors").inc()
                self._metrics.histogram("query_latency_s").record(latency)
                span.set(status=STATUS_ERROR, error=str(exc))
                submission._complete(
                    QueryResult(
                        status=STATUS_ERROR, error=str(exc), latency_s=latency
                    )
                )
                return
            latency = time.perf_counter() - started
            self._metrics.counter("queries_served").inc()
            self._metrics.histogram("query_latency_s").record(latency)
            span.set(status=STATUS_OK)
            submission._complete(
                QueryResult(status=STATUS_OK, value=value, latency_s=latency)
            )

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------

    def execute_batch(
        self,
        queries: Sequence[Query],
        timeout: Optional[float] = None,
    ) -> BatchResult:
        """Plan, prefetch and execute a batch of queries.

        The planner dedups block fetches across the batch; every unique
        materialised tile is faulted in exactly once (in block-id
        order) and pinned so concurrent eviction cannot force a
        re-read mid-batch.  Admission is cooperative — the batch waits
        for queue space rather than rejecting its own queries.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        queries = list(queries)
        tracer = get_tracer()
        started = time.perf_counter()
        before = self._store.stats.snapshot()
        with tracer.span("batch", queries=len(queries)) as batch_span:
            with tracer.span("batch.plan"):
                plan = plan_batch(self._store, queries)
            batch_span.set(
                unique_tiles=plan.num_unique_tiles,
                tile_refs=plan.total_tile_refs,
                dedup_ratio=plan.dedup_ratio,
            )
            self._metrics.counter("batches_planned").inc()
            self._metrics.counter("planned_tile_refs").inc(
                plan.total_tile_refs
            )
            self._metrics.counter("planned_unique_tiles").inc(
                plan.num_unique_tiles
            )
            with self._batch_lock:  # one prefetch wave at a time
                with tracer.span("batch.prefetch") as prefetch_span:
                    pinned = self._prefetch(plan)
                    prefetch_span.set(blocks=len(pinned))
                try:
                    submissions = []
                    for query in queries:
                        submission = Submission(
                            query, self._deadline_for(timeout)
                        )
                        self._enqueue_blocking(submission)
                        submissions.append(submission)
                    results = tuple(sub.result() for sub in submissions)
                finally:
                    for block_id in pinned:
                        self._pool.unpin(block_id)
        wall = time.perf_counter() - started
        delta = self._store.stats.delta_since(before)
        self._metrics.histogram("batch_wall_s").record(wall)
        if queries:
            self._metrics.histogram("blocks_per_query").record(
                delta.block_reads / len(queries)
            )
        return BatchResult(
            results=results,
            plan=plan,
            block_reads=delta.block_reads,
            wall_s=wall,
        )

    def _prefetch(self, plan: BatchPlan) -> List[int]:
        """Fault in and pin every materialised tile of the plan once.

        Never-written tiles have no block (they read as zeros for
        free) and are skipped.  Returns the pinned block ids.
        """
        tile_store = self._store.tile_store
        block_ids = sorted(
            block_id
            for block_id in (
                tile_store.block_of(key) for key in plan.unique_tiles
            )
            if block_id is not None
        )
        pinned: List[int] = []
        for block_id in block_ids:
            self._pool.fetch_and_pin(block_id)
            pinned.append(block_id)
        self._metrics.counter("blocks_prefetched").inc(len(pinned))
        return pinned

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain queued work, stop the workers, flush dirty blocks.

        Idempotent.  Queries already admitted are executed (or timed
        out against their deadlines); new submissions are refused.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for __ in self._workers:
            self._queue.put(None)  # sentinels drain after pending work
        for worker in self._workers:
            worker.join()
        with get_tracer().span("engine.flush"):
            self._pool.flush()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def refresh_gauges(self) -> None:
        """Publish current pool/queue occupancy into the registry's
        gauges (pull-style: refreshed on snapshot rather than on every
        pool operation, which would serialise the hot path)."""
        self._metrics.gauge("pool_resident_blocks").set(self._pool.resident)
        self._metrics.gauge("pool_dirty_blocks").set(self._pool.dirty)
        self._metrics.gauge("pool_pinned_blocks").set(self._pool.pinned)
        self._metrics.gauge("admission_queue_depth").set(self._queue.qsize())

    def snapshot(self) -> dict:
        """Engine metrics + sharded-pool stats in one dict."""
        self.refresh_gauges()
        report = self._metrics.snapshot()
        report["pool"] = self._pool.snapshot()
        counters = report["counters"]
        refs = counters.get("planned_tile_refs", 0)
        unique = counters.get("planned_unique_tiles", 0)
        report["planner_dedup_ratio"] = refs / unique if unique else 1.0
        return report
