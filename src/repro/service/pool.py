"""Thread-safe sharded buffer pool for the concurrent query service.

The library's :class:`~repro.storage.buffer_pool.BufferPool` is
single-threaded by design (experiments are).  Serving concurrent
queries needs (a) mutual exclusion and (b) contention spread, so the
service wraps K plain pools — *shards* — each owning the blocks with
``block_id % K == shard`` under its own lock.  All shards charge the
same :class:`~repro.storage.block_device.BlockDevice`; device access
and the shared :class:`~repro.storage.iostats.IOStats` updates are
serialised by one additional I/O lock so counters never lose
increments (CPython's ``+=`` on an attribute is not atomic).

The sharded pool presents the exact :class:`BufferPool` surface the
:class:`~repro.storage.tile_store.TileStore` drives (``get`` /
``create`` / ``mark_dirty`` / ``flush`` / ``drop_all``) plus
``pin``/``unpin``, so it can be swapped into an existing store with
:meth:`TileStore.set_pool`.  Per-shard hit/miss/eviction tallies come
from the underlying pools' local counters and feed the service
metrics.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro.storage.block_device import BlockDevice
from repro.storage.buffer_pool import BufferPool
from repro.storage.iostats import IOStats

__all__ = ["ShardedBufferPool"]


class _SynchronizedDevice:
    """Device facade serialising I/O (and its stat bumps) with a lock."""

    def __init__(self, device: BlockDevice, lock: threading.Lock) -> None:
        self._device = device
        self._lock = lock

    @property
    def stats(self) -> IOStats:
        return self._device.stats

    @property
    def block_slots(self) -> int:
        return self._device.block_slots

    def read_block(self, block_id: int) -> np.ndarray:
        with self._lock:
            return self._device.read_block(block_id)

    def write_block(self, block_id: int, data: np.ndarray) -> None:
        with self._lock:
            self._device.write_block(block_id, data)

    def __getattr__(self, name: str):
        # Conditionally surface durability extensions (``write_batch``,
        # ``block_summary``) so a journaled device keeps its group
        # commit under the sharded pool.  ``getattr`` probing by the
        # plain pool must still see a plain device as plain, so only
        # attributes the wrapped device actually has resolve here.
        if name in ("write_batch", "block_summary"):
            inner = getattr(self._device, name)  # AttributeError if plain

            def locked(*args, **kwargs):
                with self._lock:
                    # ``inner`` is the journaled device's method: its
                    # group commit opens a span and charges counters.
                    # may-acquire: TraceStore._lock, Tracer._orphan_lock
                    return inner(*args, **kwargs)

            return locked
        raise AttributeError(name)


class _ShardPool(BufferPool):
    """One shard: a plain pool whose shared-stat bumps take the I/O lock."""

    def __init__(self, device, capacity: int, io_lock: threading.Lock) -> None:
        super().__init__(device, capacity)
        self._io_lock = io_lock

    def _count_hit(self) -> None:
        with self._io_lock:
            super()._count_hit()

    def _count_miss(self) -> None:
        with self._io_lock:
            super()._count_miss()


class ShardedBufferPool:
    """K independently locked write-back LRU shards over one device.

    Parameters
    ----------
    device:
        The shared backing :class:`BlockDevice`.
    capacity:
        *Total* resident-block budget, split evenly across shards
        (every shard gets at least one frame, so the effective total is
        ``max(capacity, num_shards)``).
    num_shards:
        Number of lock domains.  Blocks map to shards by
        ``block_id % num_shards``.
    """

    def __init__(
        self, device: BlockDevice, capacity: int, num_shards: int = 4
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._device = device
        self._num_shards = num_shards
        self._io_lock = threading.Lock()
        synced = _SynchronizedDevice(device, self._io_lock)
        per_shard = max(1, capacity // num_shards)
        self._shards: List[_ShardPool] = [
            _ShardPool(synced, per_shard, self._io_lock)
            for __ in range(num_shards)
        ]
        self._locks = [threading.Lock() for __ in range(num_shards)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def device(self) -> BlockDevice:
        return self._device

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def capacity(self) -> int:
        """Total frame budget (sum of per-shard capacities)."""
        return sum(shard.capacity for shard in self._shards)

    @property
    def resident(self) -> int:
        return sum(shard.resident for shard in self._shards)

    @property
    def dirty(self) -> int:
        """Resident blocks with unwritten modifications, across shards."""
        total = 0
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                total += shard.dirty
        return total

    @property
    def pinned(self) -> int:
        """Resident blocks with a nonzero pin count, across shards."""
        total = 0
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                total += shard.pinned
        return total

    def shard_of(self, block_id: int) -> int:
        """Shard index owning ``block_id``."""
        return block_id % self._num_shards

    # ------------------------------------------------------------------
    # BufferPool surface (thread-safe)
    # ------------------------------------------------------------------

    def get(self, block_id: int, for_write: bool = False) -> np.ndarray:
        shard = self.shard_of(block_id)
        with self._locks[shard]:
            return self._shards[shard].get(block_id, for_write=for_write)

    def create(self, block_id: int, pin: bool = False) -> np.ndarray:
        shard = self.shard_of(block_id)
        with self._locks[shard]:
            return self._shards[shard].create(block_id, pin=pin)

    def mark_dirty(self, block_id: int) -> None:
        shard = self.shard_of(block_id)
        with self._locks[shard]:
            self._shards[shard].mark_dirty(block_id)

    def pin(self, block_id: int) -> None:
        shard = self.shard_of(block_id)
        with self._locks[shard]:
            self._shards[shard].pin(block_id)

    def unpin(self, block_id: int) -> None:
        shard = self.shard_of(block_id)
        with self._locks[shard]:
            self._shards[shard].unpin(block_id)

    def fetch_and_pin(self, block_id: int) -> np.ndarray:
        """Fault a block in (if needed) and pin it, atomically.

        A plain ``get`` + ``pin`` pair can race with concurrent traffic
        evicting the block in between; prefetching goes through this.
        """
        shard = self.shard_of(block_id)
        with self._locks[shard]:
            return self._shards[shard].get(block_id, pin=True)

    def flush(self, block_id: Optional[int] = None) -> None:
        if block_id is not None:
            shard = self.shard_of(block_id)
            with self._locks[shard]:
                self._shards[shard].flush(block_id)
            return
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                shard.flush()

    def drop_all(self) -> None:
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                shard.drop_all()

    def invalidate(self, block_ids) -> List[int]:
        """Discard (without write-back) the resident frames for
        ``block_ids``; returns the pinned ids that could not be
        discarded.  Used after replication replay rewrites blocks
        beneath the pool — stale frames must not serve old bytes."""
        by_shard: Dict[int, List[int]] = {}
        for block_id in block_ids:
            by_shard.setdefault(self.shard_of(block_id), []).append(block_id)
        leftover: List[int] = []
        for shard_index, ids in by_shard.items():
            with self._locks[shard_index]:
                leftover.extend(self._shards[shard_index].invalidate(ids))
        return leftover

    @property
    def io_lock(self) -> threading.Lock:
        """The device-serialising lock.  Replication replay writes to
        the arena beneath the pool and takes this lock so a concurrent
        query's miss cannot interleave with a half-applied group."""
        return self._io_lock

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def shard_stats(self) -> List[Dict[str, float]]:
        """Per-shard hit/miss/eviction tallies and hit rates."""
        out = []
        for index, (shard, lock) in enumerate(zip(self._shards, self._locks)):
            with lock:
                out.append(
                    {
                        "shard": index,
                        "capacity": shard.capacity,
                        "resident": shard.resident,
                        "hits": shard.hits,
                        "misses": shard.misses,
                        "evictions": shard.evictions,
                        "hit_rate": shard.hit_rate,
                    }
                )
        return out

    def snapshot(self) -> dict:
        """Aggregate + per-shard view for the metrics report."""
        shards = self.shard_stats()
        hits = sum(s["hits"] for s in shards)
        misses = sum(s["misses"] for s in shards)
        lookups = hits + misses
        return {
            "num_shards": self._num_shards,
            "capacity": self.capacity,
            "resident": sum(s["resident"] for s in shards),
            "hits": hits,
            "misses": misses,
            "evictions": sum(s["evictions"] for s in shards),
            "hit_rate": hits / lookups if lookups else 0.0,
            "shards": shards,
        }
