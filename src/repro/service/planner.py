"""Batched query planning: map queries to tile sets, dedup fetches.

The paper's tiling guarantees every fetched block carries at least
``b`` useful coefficients *for one query*.  A serving workload adds a
second axis of I/O savings the single-query benchmarks never see:
concurrent queries overlap heavily on the coarse bands (every point
query reads the top tile; range sums share boundary tiles), so a batch
of N queries touches far fewer *distinct* blocks than N independent
executions fetch.  The planner makes that overlap explicit:

1. each query is mapped to the exact set of tile keys its execution
   will read, using the same factorisation the stores use (the tiles
   touched by a cross-product index set are the cross product of the
   per-axis touched tile sets);
2. the per-query sets are unioned into one fetch list, and the ratio
   ``total per-query tile references / unique tiles`` — the **dedup
   ratio** — is reported;
3. the engine prefetches the unique list once (pinning each block) and
   then executes every query against a warm, shared pool.

Planning is pure metadata: nothing here touches the device or charges
I/O.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.core.standard_ops import chunk_axis_maps
from repro.reconstruct.rangesum import range_sum_weights
from repro.service.queries import (
    CustomQuery,
    PointQuery,
    Query,
    RangeSumQuery,
    RegionQuery,
)
from repro.util.dyadic import dyadic_box_cover
from repro.wavelet.tree import WaveletTree

__all__ = ["QueryPlan", "BatchPlan", "tiles_for_query", "plan_batch"]

TileKey = Tuple[Tuple[int, int], ...]


def _tiles_of_read(tiling, per_axis_indices: Sequence[np.ndarray]):
    """Tile keys covering one cross-product region read.

    The factorisation property (Section 3.2): the touched tile set is
    exactly the cross product of the per-axis touched tile sets.
    """
    per_axis_parts: List[List[Tuple[int, int]]] = []
    for axis, indices in enumerate(per_axis_indices):
        flat = np.asarray(indices, dtype=np.int64)
        bands, roots, __ = tiling.locate_axis_indices(axis, flat)
        parts = sorted({
            (int(band), int(root)) for band, root in zip(bands, roots)
        })
        per_axis_parts.append(parts)
    return set(itertools.product(*per_axis_parts))


def tiles_for_query(store, query: Query) -> FrozenSet[TileKey]:
    """The exact tile keys executing ``query`` against ``store`` reads.

    Mirrors the read patterns of :mod:`repro.reconstruct`:

    * point — cross product of per-axis root paths (Lemma 1);
    * range sum — cross product of per-axis boundary coefficient sets
      (Lemma 2);
    * region — one cross-product read per piece of the canonical
      dyadic cover (Result 6);
    * custom — unknown, planned as the empty set.
    """
    tiling = store.tiling
    shape = store.shape
    if isinstance(query, PointQuery):
        if len(query.position) != len(shape):
            raise ValueError(
                f"position must have {len(shape)} axes, got {query.position}"
            )
        return frozenset(tiling.tiles_on_root_path(query.position))
    if isinstance(query, RangeSumQuery):
        per_axis = [
            range_sum_weights(extent, low, high)[0]
            for extent, low, high in zip(shape, query.lows, query.highs)
        ]
        return frozenset(_tiles_of_read(tiling, per_axis))
    if isinstance(query, RegionQuery):
        tiles = set()
        for box in dyadic_box_cover(query.starts, query.stops):
            grid_position = [
                start // extent
                for start, extent in zip(box.starts, box.shape)
            ]
            maps = chunk_axis_maps(shape, box.shape, grid_position)
            tiles |= _tiles_of_read(tiling, [mp.target for mp in maps])
        return frozenset(tiles)
    if isinstance(query, CustomQuery):
        return frozenset()
    raise TypeError(f"unsupported query type: {type(query).__name__}")


@dataclass(frozen=True)
class QueryPlan:
    """One query plus the tile keys its execution will read."""

    query: Query
    tiles: FrozenSet[TileKey]


@dataclass(frozen=True)
class BatchPlan:
    """A batch's per-query plans and the deduplicated fetch list."""

    plans: Tuple[QueryPlan, ...]
    unique_tiles: Tuple[TileKey, ...]
    total_tile_refs: int

    @property
    def num_queries(self) -> int:
        return len(self.plans)

    @property
    def num_unique_tiles(self) -> int:
        return len(self.unique_tiles)

    @property
    def dedup_ratio(self) -> float:
        """Per-query tile references per unique tile; > 1 whenever
        queries overlap (1.0 for an empty or perfectly disjoint
        batch)."""
        if not self.unique_tiles:
            return 1.0
        return self.total_tile_refs / len(self.unique_tiles)

    def report(self) -> Dict[str, float]:
        """JSON-friendly summary for metrics and benchmarks."""
        return {
            "queries": self.num_queries,
            "tile_refs": self.total_tile_refs,
            "unique_tiles": self.num_unique_tiles,
            "dedup_ratio": self.dedup_ratio,
        }


def plan_batch(store, queries: Sequence[Query]) -> BatchPlan:
    """Plan a batch: per-query tile sets plus the deduplicated union.

    ``unique_tiles`` preserves first-reference order, which clusters
    tiles queried together — the engine re-orders by block id before
    prefetching anyway.
    """
    plans: List[QueryPlan] = []
    unique: Dict[TileKey, None] = {}
    total_refs = 0
    for query in queries:
        tiles = tiles_for_query(store, query)
        plans.append(QueryPlan(query=query, tiles=tiles))
        total_refs += len(tiles)
        for key in sorted(tiles):
            unique.setdefault(key, None)
    return BatchPlan(
        plans=tuple(plans),
        unique_tiles=tuple(unique),
        total_tile_refs=total_refs,
    )


# Re-exported for callers that want the point-query helper directly.
def root_path_indices(extent: int, coordinate: int) -> np.ndarray:
    """Flat per-axis root-path indices (Lemma 1) — the read pattern of
    a standard-form point query along one axis."""
    return np.asarray(
        WaveletTree(extent).root_path(int(coordinate)), dtype=np.int64
    )
