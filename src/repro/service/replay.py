"""Workload replay: drive the query service and report what it saved.

Builds a tiled store from synthetic data, generates a mixed
point/range-sum/region workload from :mod:`repro.datasets.workloads`,
then executes it twice:

* **naive** — one query at a time, cold cache before each (the cost
  model of N independent clients hitting an unbatched, uncached
  engine);
* **batched** — through :class:`~repro.service.engine.QueryEngine`:
  planner dedup, one pinned prefetch per unique block, concurrent
  workers over the sharded pool.

The report quantifies the serving-layer claim that rides on the
paper's tiling: overlapping root paths mean a batch reads far fewer
blocks than the sum of its queries' individual footprints.  Results
are cross-checked between the two paths before anything is reported.

``python -m repro serve-replay`` prints the report as JSON;
``benchmarks/bench_service_throughput.py`` asserts on it.
"""

from __future__ import annotations

import json
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.synthetic import random_cube, zipf_cube
from repro.datasets.workloads import point_workload, range_workload
from repro.obs import (
    IO_FIELDS,
    get_tracer,
    io_receipt,
    query_receipts,
    to_chrome_trace,
    to_prometheus,
    tracing,
)
from repro.fault.breaker import CircuitBreaker
from repro.fault.device import FaultyBlockDevice
from repro.fault.retry import RetryPolicy
from repro.service.engine import QueryEngine
from repro.service.queries import (
    PointQuery,
    Query,
    RangeSumQuery,
    RegionQuery,
    execute_query,
)
from repro.storage.tiled import TiledStandardStore
from repro.transform.chunked import transform_standard_chunked

__all__ = [
    "build_store",
    "build_workload",
    "run_naive",
    "replay",
]


def build_store(
    shape: Sequence[int] = (64, 64),
    block_edge: int = 8,
    pool_capacity: int = 32,
    dataset: str = "zipf",
    seed: int = 0,
) -> Tuple[TiledStandardStore, np.ndarray]:
    """A loaded standard-form tiled store plus its ground-truth data."""
    shape = tuple(int(extent) for extent in shape)
    if dataset == "zipf":
        data = zipf_cube(shape, seed=seed)
    elif dataset == "random":
        data = random_cube(shape, seed=seed)
    else:
        raise ValueError(f"unknown dataset {dataset!r}")
    store = TiledStandardStore(
        shape, block_edge=block_edge, pool_capacity=pool_capacity
    )
    chunk_shape = tuple(min(block_edge, extent) for extent in shape)
    transform_standard_chunked(store, data, chunk_shape)
    store.flush()
    store.stats.reset()
    return store, data


def build_workload(
    shape: Sequence[int],
    points: int = 32,
    range_sums: int = 16,
    regions: int = 16,
    skew: float = 1.0,
    selectivity: float = 0.15,
    seed: int = 0,
) -> List[Query]:
    """A reproducible mixed workload, interleaved round-robin so every
    prefix of the batch is mixed (as an online arrival order would be)."""
    shape = tuple(int(extent) for extent in shape)
    point_queries: List[Query] = [
        PointQuery(position)
        for position in point_workload(shape, points, skew=skew, seed=seed)
    ]
    sum_queries: List[Query] = [
        RangeSumQuery(lows, highs)
        for lows, highs in range_workload(
            shape, range_sums, selectivity=selectivity, seed=seed + 1
        )
    ]
    region_queries: List[Query] = [
        RegionQuery(lows, tuple(high + 1 for high in highs))
        for lows, highs in range_workload(
            shape, regions, selectivity=selectivity, seed=seed + 2
        )
    ]
    queues = [point_queries, sum_queries, region_queries]
    mixed: List[Query] = []
    while any(queues):
        for queue in queues:
            if queue:
                mixed.append(queue.pop(0))
    return mixed


def _results_match(left, right) -> bool:
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return np.allclose(left, right, atol=1e-9)
    return bool(np.isclose(left, right, atol=1e-9))


def _within_bound(truth, value, bound: Optional[float]) -> bool:
    """Is a degraded answer within its self-reported absolute bound?"""
    if bound is None or not np.isfinite(bound):
        return False
    if isinstance(truth, np.ndarray) or isinstance(value, np.ndarray):
        return bool(np.max(np.abs(np.asarray(truth) - np.asarray(value))) <= bound + 1e-9)
    return bool(abs(truth - value) <= bound + 1e-9)


def run_naive(store, queries: Sequence[Query]) -> dict:
    """One-query-at-a-time baseline: cold cache before every query,
    sequential execution, no sharing.  Returns values and I/O costs."""
    values = []
    tracer = get_tracer()
    before = store.stats.snapshot()
    started = time.perf_counter()
    for query in queries:
        store.drop_cache()  # every query pays its own full footprint
        with tracer.span("naive.query", kind=type(query).__name__):
            values.append(execute_query(store, query))
    wall = time.perf_counter() - started
    delta = store.stats.delta_since(before)
    return {
        "values": values,
        "block_reads": delta.block_reads,
        "blocks_per_query": (
            delta.block_reads / len(queries) if queries else 0.0
        ),
        "wall_s": wall,
        "throughput_qps": len(queries) / wall if wall > 0 else 0.0,
    }


def replay(
    shape: Sequence[int] = (64, 64),
    block_edge: int = 8,
    pool_capacity: int = 64,
    points: int = 32,
    range_sums: int = 16,
    regions: int = 16,
    num_workers: int = 4,
    num_shards: int = 4,
    queue_depth: int = 64,
    skew: float = 1.0,
    selectivity: float = 0.15,
    dataset: str = "zipf",
    seed: int = 0,
    trace: bool = False,
    trace_path: Optional[str] = None,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
) -> dict:
    """Run the full naive-vs-batched comparison; return the report.

    With ``fault_rate > 0`` the batched phase runs against a device
    injecting transient read faults at that probability, served by a
    self-healing engine (retry with backoff, circuit breaker, degraded
    reads).  Ground truth comes from the fault-free naive phase; every
    batched result is then classified as exactly one of
    retried-to-success (value matches truth), degraded-within-bound
    (``|value - truth| <= error_bound``), or a definite error — the
    report's ``fault`` section counts each class, and ``fault.wrong``
    (answers that are none of the three) must be zero for the run to be
    considered correct.

    With ``trace=True`` (implied by ``trace_path``) the serving phase
    runs under a fresh tracer: the report gains a ``"trace"`` section
    with the aggregate I/O receipt, per-query receipts, and a
    ``lossless`` flag asserting that the receipt total equals the exact
    global :class:`IOStats` delta of the traced region, plus a
    ``"prometheus"`` text rendering of the engine metrics.  When
    ``trace_path`` is given, the Chrome trace-event JSON is also
    written there (loadable in Perfetto).
    """
    store, __ = build_store(
        shape,
        block_edge=block_edge,
        pool_capacity=pool_capacity,
        dataset=dataset,
        seed=seed,
    )
    queries = build_workload(
        store.shape,
        points=points,
        range_sums=range_sums,
        regions=regions,
        skew=skew,
        selectivity=selectivity,
        seed=seed,
    )
    config = {
        "shape": list(store.shape),
        "block_edge": block_edge,
        "pool_capacity": pool_capacity,
        "num_workers": num_workers,
        "num_shards": num_shards,
        "queue_depth": queue_depth,
        "dataset": dataset,
        "queries": len(queries),
        "points": points,
        "range_sums": range_sums,
        "regions": regions,
        "seed": seed,
    }
    if fault_rate > 0:
        config["fault_rate"] = fault_rate
        config["fault_seed"] = fault_seed
    if not (trace or trace_path):
        report, __ = _serve(
            store,
            queries,
            num_workers=num_workers,
            num_shards=num_shards,
            queue_depth=queue_depth,
            pool_capacity=pool_capacity,
            fault_rate=fault_rate,
            fault_seed=fault_seed,
        )
        report["config"] = config
        return report

    with tracing() as tracer:
        report, expected = _serve(
            store,
            queries,
            num_workers=num_workers,
            num_shards=num_shards,
            queue_depth=queue_depth,
            pool_capacity=pool_capacity,
            fault_rate=fault_rate,
            fault_seed=fault_seed,
        )
    report["config"] = config
    spans = tracer.spans()
    receipt = io_receipt(spans, tracer.orphan_io)
    lossless = all(
        receipt["total"][field] == expected[field] for field in IO_FIELDS
    )
    report["trace"] = {
        "spans": len(spans),
        "dropped_spans": tracer.store.dropped,
        "receipt": receipt,
        "queries": query_receipts(spans),
        "expected_io": expected,
        "lossless": lossless,
    }
    report["prometheus"] = to_prometheus(report["metrics"])
    if trace_path:
        chrome = to_chrome_trace(
            spans,
            orphan_io=tracer.orphan_io,
            dropped=tracer.store.dropped,
            process_name="repro.serve-replay",
        )
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump(chrome, handle)
        report["trace"]["path"] = trace_path
    return report


def _serve(
    store,
    queries: Sequence[Query],
    num_workers: int,
    num_shards: int,
    queue_depth: int,
    pool_capacity: int,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
) -> Tuple[dict, dict]:
    """Serve the workload naively then batched over ``store``.

    Returns the report (without its ``config`` section) plus the exact
    per-field I/O totals of everything executed here — accumulated
    *across* the mid-run ``stats.reset()``, so a tracer covering this
    call can be checked for lossless attribution against it.
    """
    expected = {field: 0 for field in IO_FIELDS}

    base = store.stats.snapshot()
    naive = run_naive(store, queries)
    store.drop_cache()
    phase = store.stats.delta_since(base)
    for field in IO_FIELDS:
        expected[field] += getattr(phase, field)
    store.stats.reset()

    faulty = None
    engine_kwargs = {}
    if fault_rate > 0:
        # Truth is in hand (fault-free naive phase); now pull the rug:
        # every device read rolls a transient failure, and the engine
        # must still answer every query definitively.
        def _inject(device):
            nonlocal faulty
            faulty = FaultyBlockDevice(
                device, seed=fault_seed, read_error_rate=fault_rate
            )
            return faulty

        store.tile_store.wrap_device(_inject)
        engine_kwargs = {
            "retry_policy": RetryPolicy(
                max_attempts=4, base_delay_s=0.0002, seed=fault_seed
            ),
            "breaker": CircuitBreaker(failure_threshold=16),
            "degraded_reads": True,
        }

    engine = QueryEngine(
        store,
        num_workers=num_workers,
        queue_depth=queue_depth,
        num_shards=num_shards,
        pool_capacity=pool_capacity,
        **engine_kwargs,
    )
    try:
        batch = engine.execute_batch(queries)
    finally:
        engine.close()

    mismatches = 0
    fault_report = None
    if fault_rate > 0:
        recovered = degraded = definite_errors = wrong = 0
        for truth, result in zip(naive["values"], batch.results):
            if result.ok:
                if _results_match(truth, result.value):
                    recovered += 1
                else:
                    wrong += 1
            elif result.degraded:
                if _within_bound(truth, result.value, result.error_bound):
                    degraded += 1
                else:
                    wrong += 1
            else:
                definite_errors += 1
        mismatches = wrong
        fault_report = {
            "fault_rate": fault_rate,
            "injected": faulty.fault_counts() if faulty is not None else {},
            "recovered_ok": recovered,
            "degraded_within_bound": degraded,
            "definite_errors": definite_errors,
            "wrong": wrong,
        }
    else:
        mismatches = sum(
            1
            for naive_value, result in zip(naive["values"], batch.results)
            if not (result.ok and _results_match(naive_value, result.value))
        )

    batched = {
        "block_reads": batch.block_reads,
        "blocks_per_query": batch.blocks_per_query,
        "wall_s": batch.wall_s,
        "throughput_qps": (
            len(queries) / batch.wall_s if batch.wall_s > 0 else 0.0
        ),
        "dedup_ratio": batch.plan.dedup_ratio,
        "unique_tiles": batch.plan.num_unique_tiles,
        "tile_refs": batch.plan.total_tile_refs,
    }
    naive_report = {k: v for k, v in naive.items() if k != "values"}
    final = store.stats.snapshot()
    for field in IO_FIELDS:
        expected[field] += getattr(final, field)
    report = {
        "naive": naive_report,
        "batched": batched,
        "block_read_savings": (
            naive["block_reads"] / batch.block_reads
            if batch.block_reads
            else float("inf")
        ),
        "results_match": mismatches == 0,
        "mismatches": mismatches,
        "metrics": engine.snapshot(),
    }
    if fault_report is not None:
        report["fault"] = fault_report
    return report, expected
