"""Concurrent wavelet query service (the serving layer).

Everything below :mod:`repro.service` treats the rest of the library
as an engine room: the tilings say which blocks a query needs, the
stores move blocks, and this package turns that into a servable
endpoint — a batched planner that dedups block fetches across queries,
a thread-safe sharded buffer pool, a worker-pooled engine with
admission control and deadlines, serving metrics, and a workload
replay driver (``python -m repro serve-replay``).

Typical use::

    from repro.service import QueryEngine, PointQuery, RangeSumQuery

    engine = QueryEngine(store, num_workers=8, num_shards=4)
    batch = engine.execute_batch([PointQuery((3, 5)),
                                  RangeSumQuery((0, 0), (15, 15))])
    print(batch.plan.dedup_ratio, batch.results[0].value)
    engine.close()
"""

from repro.service.engine import (
    AdmissionError,
    BatchResult,
    EngineClosedError,
    QueryEngine,
    QueryResult,
    Submission,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.planner import BatchPlan, QueryPlan, plan_batch, tiles_for_query
from repro.service.pool import ShardedBufferPool
from repro.service.queries import (
    CustomQuery,
    DegradedValue,
    PointQuery,
    Query,
    RangeSumQuery,
    RegionQuery,
    execute_query,
    execute_query_degraded,
    query_weight_bound,
)
from repro.service.replay import build_store, build_workload, replay, run_naive

__all__ = [
    "AdmissionError",
    "BatchPlan",
    "BatchResult",
    "Counter",
    "CustomQuery",
    "DegradedValue",
    "EngineClosedError",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PointQuery",
    "Query",
    "QueryEngine",
    "QueryPlan",
    "QueryResult",
    "RangeSumQuery",
    "RegionQuery",
    "ShardedBufferPool",
    "Submission",
    "build_store",
    "build_workload",
    "execute_query",
    "execute_query_degraded",
    "plan_batch",
    "query_weight_bound",
    "replay",
    "run_naive",
    "tiles_for_query",
]
