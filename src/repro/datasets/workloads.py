"""Query-workload generators for benchmarks and ablations.

OLAP query mixes are rarely uniform: analysts drill into hot regions
and ask ranges of wildly different sizes.  These generators produce
reproducible point and range workloads, uniform or focus-skewed, used
by the query ablations.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

__all__ = ["point_workload", "range_workload"]


def point_workload(
    shape: Sequence[int],
    count: int,
    skew: float = 0.0,
    seed: int = 0,
) -> Iterator[Tuple[int, ...]]:
    """Yield ``count`` point-query positions.

    ``skew = 0`` is uniform; larger values concentrate queries around
    a hot spot (a Gaussian blob around a random centre), the common
    drill-down pattern.
    """
    shape = tuple(int(extent) for extent in shape)
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    rng = np.random.default_rng(seed)
    centre = [rng.integers(0, extent) for extent in shape]
    for __ in range(count):
        if skew == 0.0:
            yield tuple(
                int(rng.integers(0, extent)) for extent in shape
            )
            continue
        position = []
        for axis, extent in enumerate(shape):
            spread = max(1.0, extent / (2.0 * (1.0 + skew)))
            value = int(round(rng.normal(centre[axis], spread)))
            position.append(min(max(value, 0), extent - 1))
        yield tuple(position)


def range_workload(
    shape: Sequence[int],
    count: int,
    selectivity: float = 0.1,
    seed: int = 0,
) -> Iterator[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Yield ``count`` ``(lows, highs)`` boxes with roughly the given
    per-axis ``selectivity`` (fraction of the axis covered)."""
    shape = tuple(int(extent) for extent in shape)
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 0.0 < selectivity <= 1.0:
        raise ValueError(
            f"selectivity must be in (0, 1], got {selectivity}"
        )
    rng = np.random.default_rng(seed)
    for __ in range(count):
        lows = []
        highs = []
        for extent in shape:
            span = max(1, int(round(extent * selectivity)))
            jitter = max(1, span // 2)
            width = int(rng.integers(max(1, span - jitter), span + jitter + 1))
            width = min(width, extent)
            start = int(rng.integers(0, extent - width + 1))
            lows.append(start)
            highs.append(start + width - 1)
        yield tuple(lows), tuple(highs)
