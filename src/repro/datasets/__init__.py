"""Synthetic datasets standing in for the paper's TEMPERATURE and
PRECIPITATION data (see DESIGN.md for the substitution rationale)."""

from repro.datasets.streams import bursty_stream, random_walk_stream, slab_stream
from repro.datasets.synthetic import (
    precipitation_cube,
    precipitation_months,
    random_cube,
    sparse_cube,
    temperature_cube,
    zipf_cube,
)

__all__ = [
    "bursty_stream",
    "precipitation_cube",
    "precipitation_months",
    "random_cube",
    "random_walk_stream",
    "slab_stream",
    "sparse_cube",
    "temperature_cube",
    "zipf_cube",
]
