"""Stream generators for the Section 5.3 experiments."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.util.validation import require_power_of_two_shape

__all__ = ["random_walk_stream", "bursty_stream", "slab_stream"]


def random_walk_stream(length: int, seed: int = 17) -> np.ndarray:
    """A random-walk time series — smooth, wavelet-friendly."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(size=length))


def bursty_stream(
    length: int, burst_probability: float = 0.02, seed: int = 23
) -> np.ndarray:
    """A mostly-flat series with sparse large bursts — the regime where
    a K-term synopsis captures almost all the energy."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if not 0.0 < burst_probability <= 1.0:
        raise ValueError(
            f"burst_probability must be in (0, 1], got {burst_probability}"
        )
    rng = np.random.default_rng(seed)
    series = rng.normal(scale=0.1, size=length)
    bursts = rng.random(length) < burst_probability
    series[bursts] += rng.normal(scale=20.0, size=int(bursts.sum()))
    return series


def slab_stream(
    fixed_shape: Tuple[int, ...], steps: int, seed: int = 29
) -> Iterator[np.ndarray]:
    """Yield ``steps`` time slices of shape ``fixed_shape`` with smooth
    spatial structure drifting over time (the multidimensional stream
    of Results 4-5)."""
    fixed_shape = require_power_of_two_shape(fixed_shape, "fixed_shape")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(
        *[np.linspace(0, np.pi, extent) for extent in fixed_shape],
        indexing="ij",
    )
    base = np.zeros(fixed_shape)
    for grid in grids:
        base = base + np.sin(grid)
    for step in range(steps):
        drift = np.cos(2 * np.pi * step / max(steps, 1))
        yield base * (1.0 + 0.5 * drift) + rng.normal(
            scale=0.2, size=fixed_shape
        )
