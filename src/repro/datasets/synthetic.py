"""Synthetic stand-ins for the paper's evaluation datasets.

The paper measures on two real datasets we cannot redistribute:

TEMPERATURE (JPL)
    4-d cube — latitude x longitude x altitude x time — of global
    temperatures sampled twice daily for 18 months (16 GB).
    :func:`temperature_cube` generates a smooth spatial field with an
    altitude lapse rate and diurnal/seasonal time structure, which
    preserves what matters for the experiments: the I/O counts depend
    only on the cube geometry, and the smoothness gives wavelet
    synopses the same qualitative compressibility.

PRECIPITATION [14]
    Daily precipitation for the Pacific Northwest over 45 years,
    organised as 8 x 8 x 32 cells per month.
    :func:`precipitation_cube` generates non-negative, bursty,
    spatially correlated values with the same monthly geometry.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.validation import require_power_of_two_shape

__all__ = [
    "temperature_cube",
    "precipitation_cube",
    "precipitation_months",
    "zipf_cube",
    "random_cube",
    "sparse_cube",
]


def temperature_cube(
    shape: Sequence[int] = (16, 16, 8, 64), seed: int = 7
) -> np.ndarray:
    """A TEMPERATURE-like 4-d cube (lat, lon, alt, time), in Kelvin."""
    shape = require_power_of_two_shape(shape)
    if len(shape) != 4:
        raise ValueError(f"temperature cube must be 4-d, got {shape}")
    rng = np.random.default_rng(seed)
    lat, lon, alt, time = shape
    latitudes = np.linspace(-np.pi / 2, np.pi / 2, lat)
    longitudes = np.linspace(0, 2 * np.pi, lon, endpoint=False)
    altitudes = np.arange(alt)
    times = np.arange(time)

    base = 288.0 - 30.0 * np.sin(latitudes) ** 2  # equator warm, poles cold
    continental = 5.0 * np.sin(2 * longitudes)  # land/sea-like wave
    lapse = -6.5 * altitudes  # 6.5 K per altitude step
    diurnal = 4.0 * np.sin(2 * np.pi * times / 2.0)  # 2 samples per day
    seasonal = 8.0 * np.sin(2 * np.pi * times / max(time, 1))

    cube = (
        base[:, None, None, None]
        + continental[None, :, None, None]
        + lapse[None, None, :, None]
        + (diurnal + seasonal)[None, None, None, :]
    )
    cube = cube + rng.normal(scale=1.5, size=shape)
    return cube


def precipitation_months(
    months: int,
    spatial: Tuple[int, int] = (8, 8),
    samples_per_month: int = 32,
    seed: int = 11,
):
    """Yield PRECIPITATION-like monthly slabs of shape
    ``spatial + (samples_per_month,)``.

    Values are non-negative and bursty: a smooth spatial intensity
    field modulated by sparse storm events, with a seasonal cycle.
    """
    require_power_of_two_shape(spatial, "spatial")
    require_power_of_two_shape((samples_per_month,), "samples_per_month")
    if months < 1:
        raise ValueError(f"months must be >= 1, got {months}")
    rng = np.random.default_rng(seed)
    rows = np.linspace(0, np.pi, spatial[0])
    cols = np.linspace(0, np.pi, spatial[1])
    orographic = 2.0 + np.sin(rows)[:, None] * np.cos(cols)[None, :]
    for month in range(months):
        season = 1.0 + 0.8 * np.cos(2 * np.pi * month / 12.0)
        storms = rng.random(size=(samples_per_month,)) < 0.35 * season
        intensity = rng.gamma(
            shape=2.0, scale=3.0, size=(samples_per_month,)
        )
        slab = (
            orographic[:, :, None]
            * (storms * intensity)[None, None, :]
            * rng.gamma(shape=2.0, scale=0.5, size=spatial + (samples_per_month,))
        )
        yield slab


def precipitation_cube(
    months: int,
    spatial: Tuple[int, int] = (8, 8),
    samples_per_month: int = 32,
    seed: int = 11,
) -> np.ndarray:
    """The PRECIPITATION-like data of :func:`precipitation_months`
    assembled into a single 3-d cube (time last)."""
    slabs = list(
        precipitation_months(months, spatial, samples_per_month, seed)
    )
    return np.concatenate(slabs, axis=-1)


def zipf_cube(shape: Sequence[int], alpha: float = 1.2, seed: int = 3) -> np.ndarray:
    """A skewed cube: cell magnitudes follow a Zipf-like power law in a
    random permutation — the classic hard case for synopses."""
    shape = require_power_of_two_shape(shape)
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    rng = np.random.default_rng(seed)
    cells = int(np.prod(shape))
    ranks = np.arange(1, cells + 1, dtype=np.float64)
    values = ranks ** (-alpha)
    rng.shuffle(values)
    signs = rng.choice([-1.0, 1.0], size=cells)
    return (values * signs).reshape(shape)


def random_cube(shape: Sequence[int], seed: int = 0) -> np.ndarray:
    """White-noise cube (the incompressible extreme)."""
    shape = require_power_of_two_shape(shape)
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape)


def sparse_cube(
    shape: Sequence[int], density: float = 0.05, seed: int = 9
) -> np.ndarray:
    """Mostly-zero cube with ``density`` fraction of nonzero cells —
    the sparse regime the paper's Vitter comparison mentions."""
    shape = require_power_of_two_shape(shape)
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    cube = np.zeros(shape, dtype=np.float64)
    cells = int(np.prod(shape))
    nonzero = max(1, int(cells * density))
    positions = rng.choice(cells, size=nonzero, replace=False)
    flat = cube.reshape(-1)
    flat[positions] = rng.normal(scale=10.0, size=nonzero)
    return cube
