"""Batch updates to wavelet-transformed data (paper, Example 2).

Updating differs from appending: the touched cells already lie inside
the transformed domain, so no expansion happens — but a naive approach
still updates every coefficient on each touched cell's root path,
``O(M̃ (log N + 1))`` coefficient I/Os for an ``M̃``-cell batch
(``(log N + 1)^d`` per cell in ``d`` dimensions).

SHIFT-SPLIT batches the updates instead: transform the update block in
memory, SHIFT its details onto the stored coefficients (adding), and
SPLIT its average along the path — ``O(M̃ + log(N/M̃))`` per dimension,
the paper's Example 2 bound.

Both strategies are implemented here so the improvement is measurable;
they produce bit-identical transforms.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.nonstandard_ops import apply_chunk_nonstandard
from repro.core.plans import StandardChunkPlan, get_standard_plan
from repro.core.standard_ops import apply_chunk_standard
from repro.util.validation import as_float_array, require_power_of_two_shape
from repro.wavelet.tree import WaveletTree

__all__ = [
    "batch_update_standard",
    "batch_update_nonstandard",
    "naive_update_standard",
    "standard_update_plan",
]


def _update_grid_position(
    corner: Sequence[int], shape: Sequence[int]
) -> tuple:
    grid_position = []
    for axis, (start, extent) in enumerate(zip(corner, shape)):
        if int(start) % extent:
            raise ValueError(
                f"corner[{axis}]={start} is not aligned to extent {extent}"
            )
        grid_position.append(int(start) // extent)
    return tuple(grid_position)


def standard_update_plan(
    store, block_shape: Sequence[int], corner: Sequence[int]
) -> StandardChunkPlan:
    """The memoised SHIFT-SPLIT plan of one update geometry.

    A stream of same-shaped update batches at a fixed corner (a hot
    cell block, a rolling window) hits the same plan every time; fetch
    it once and pass it to :func:`batch_update_standard` to skip even
    the per-call cache lookup.
    """
    block_shape = require_power_of_two_shape(block_shape, "block_shape")
    return get_standard_plan(
        store.shape, block_shape, _update_grid_position(corner, block_shape)
    )


def batch_update_standard(
    store,
    deltas,
    corner: Sequence[int],
    plan: Optional[StandardChunkPlan] = None,
) -> None:
    """Apply a block of additive updates via SHIFT-SPLIT (Example 2).

    ``deltas`` is the dyadic update block (its shape must be a
    power-of-two box and ``corner`` aligned to it); every stored
    coefficient the block influences is updated in one batched pass.
    ``plan`` optionally carries a pre-fetched
    :func:`standard_update_plan` for this exact geometry.
    """
    deltas = as_float_array(deltas, "deltas")
    shape = require_power_of_two_shape(deltas.shape, "deltas shape")
    grid_position = _update_grid_position(corner, shape)
    apply_chunk_standard(store, deltas, grid_position, fresh=False, plan=plan)


def batch_update_nonstandard(
    store,
    deltas,
    corner: Sequence[int],
) -> None:
    """Non-standard-form batch update via SHIFT-SPLIT."""
    deltas = as_float_array(deltas, "deltas")
    shape = require_power_of_two_shape(deltas.shape, "deltas shape")
    edges = set(shape)
    if len(edges) != 1:
        raise ValueError(
            f"non-standard updates need a cubic block, got {shape}"
        )
    edge = shape[0]
    grid_position = []
    for axis, start in enumerate(corner):
        if int(start) % edge:
            raise ValueError(
                f"corner[{axis}]={start} is not aligned to edge {edge}"
            )
        grid_position.append(int(start) // edge)
    apply_chunk_nonstandard(store, deltas, tuple(grid_position), fresh=False)


def naive_update_standard(
    store,
    deltas,
    corner: Sequence[int],
) -> None:
    """The baseline Example 2 improves on: update each cell separately.

    Every updated cell walks the cross product of per-axis root paths
    and adjusts each covered coefficient — ``(log N + 1)^d``
    read-modify-writes per cell.  A cell's delta enters a coefficient
    with weight ``prod_axis sign_axis / 2^{level_axis}`` (a delta at
    one cell changes the average of a ``2^j``-cell support by
    ``delta / 2^j``).
    """
    deltas = as_float_array(deltas, "deltas")
    shape = store.shape
    trees = [WaveletTree(extent) for extent in shape]
    for offsets in np.ndindex(*deltas.shape):
        delta = float(deltas[offsets])
        if delta == 0.0:
            continue
        position = tuple(
            int(start) + offset for start, offset in zip(corner, offsets)
        )
        axis_indices = []
        axis_weights = []
        for axis, tree in enumerate(trees):
            path = tree.root_path(position[axis])
            signs = tree.reconstruction_signs(position[axis])
            n = shape[axis].bit_length() - 1
            weights = []
            for index, sign in zip(path, signs):
                if index == 0:
                    weights.append(1.0 / (1 << n))
                else:
                    level = n - (index.bit_length() - 1)
                    weights.append(sign / (1 << level))
            axis_indices.append(np.asarray(path, dtype=np.int64))
            axis_weights.append(np.asarray(weights, dtype=np.float64))
        update = delta
        block = np.full(
            tuple(len(path) for path in axis_indices), update
        )
        for axis, weights in enumerate(axis_weights):
            reshaped = [1] * len(axis_indices)
            reshaped[axis] = weights.size
            block = block * weights.reshape(reshaped)
        store.add_region(axis_indices, block)
