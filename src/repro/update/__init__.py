"""Batch updates to transformed data (paper, Example 2)."""

from repro.update.batch import (
    batch_update_nonstandard,
    batch_update_standard,
    naive_update_standard,
)

__all__ = [
    "batch_update_nonstandard",
    "batch_update_standard",
    "naive_update_standard",
]
