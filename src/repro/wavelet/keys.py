"""Coefficient keys for the two multidimensional decomposition forms.

Standard form (Section 3.1, Figure 5)
    Every coefficient is a tensor product of per-dimension 1-d basis
    functions, so its address is simply the tuple of per-dimension flat
    1-d indices.  No extra key type is needed — a ``tuple[int, ...]``
    of per-axis indices *is* the key, and it doubles as the position in
    the transformed ndarray.

Non-standard form (Section 3.1, Figure 7)
    Coefficients live on a ``2^d``-ary quadtree.  A node at level ``j``
    and position ``(k_1..k_d)`` (each ``k_i < N / 2^j``) holds the
    ``2^d - 1`` details of its support hypercube, one per nonzero
    *type* bitmask (bit ``i`` set means "differencing along axis
    ``i``").  :class:`NonStandardKey` captures ``(level, node, type)``
    and knows its position in the Mallat-layout ndarray.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "NonStandardKey",
    "nonstandard_keys_of_node",
    "standard_position",
]


@dataclass(frozen=True)
class NonStandardKey:
    """Address of one non-standard detail coefficient.

    Attributes
    ----------
    level:
        Decomposition level ``j`` in ``[1, n]`` (coarsest is ``n``).
    node:
        Quadtree node position ``(k_1..k_d)``, each in ``[0, N/2^j)``.
    type_mask:
        Nonzero bitmask over axes; bit ``i`` set means the basis
        function differences along axis ``i`` (and averages along the
        others).  In 2-d these are the paper's ``W_h``, ``W_v``,
        ``W_d`` subspaces.
    """

    level: int
    node: Tuple[int, ...]
    type_mask: int

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ValueError(f"level must be >= 1, got {self.level}")
        ndim = len(self.node)
        if ndim == 0:
            raise ValueError("node position must have at least one axis")
        if not 1 <= self.type_mask < (1 << ndim):
            raise ValueError(
                f"type_mask must be in [1, 2^{ndim}), got {self.type_mask}"
            )
        if any(k < 0 for k in self.node):
            raise ValueError(f"node coordinates must be >= 0, got {self.node}")

    @property
    def ndim(self) -> int:
        return len(self.node)

    def position(self, size: int) -> Tuple[int, ...]:
        """Position of this coefficient in the Mallat-layout ndarray.

        Along axis ``i`` the coordinate is ``k_i`` when the type bit is
        clear (smooth direction) and ``N/2^j + k_i`` when it is set
        (detail direction) — exactly the 1-d flat layout applied per
        axis.
        """
        width = size >> self.level
        if width == 0:
            raise ValueError(
                f"level {self.level} is too deep for domain size {size}"
            )
        return tuple(
            k + width if (self.type_mask >> axis) & 1 else k
            for axis, k in enumerate(self.node)
        )

    def support_slices(self) -> Tuple[slice, ...]:
        """Slices of the original data covered by this coefficient."""
        edge = 1 << self.level
        return tuple(slice(k * edge, (k + 1) * edge) for k in self.node)

    def parent_node(self) -> Tuple[int, ...]:
        """Quadtree node position of the parent (level + 1)."""
        return tuple(k // 2 for k in self.node)


def nonstandard_keys_of_node(
    level: int, node: Tuple[int, ...]
) -> Iterator[NonStandardKey]:
    """All ``2^d - 1`` detail keys stored in one quadtree node."""
    ndim = len(node)
    for type_mask in range(1, 1 << ndim):
        yield NonStandardKey(level=level, node=node, type_mask=type_mask)


def standard_position(per_axis_indices: Tuple[int, ...]) -> Tuple[int, ...]:
    """Position of a standard-form coefficient in the transformed array.

    Identity by construction (the per-axis flat indices *are* the array
    position); exists so call sites read as intent rather than as a
    coincidence of layouts.
    """
    return per_axis_indices
