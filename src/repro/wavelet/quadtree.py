"""Quadtree navigation for the non-standard form (paper, Figure 7).

The non-standard decomposition of a ``d``-dimensional cube induces a
``D = 2^d``-ary tree whose node at level ``j``, position ``(k_1..k_d)``
holds the ``D - 1`` detail coefficients with support hypercube of edge
``2^j`` at corner ``(k_i * 2^j)``.  Reconstructing a point traverses
the leaf-to-root node path and uses all ``D - 1`` details per node plus
the overall average.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.util.bits import ilog2
from repro.wavelet.keys import NonStandardKey, nonstandard_keys_of_node

__all__ = ["NonStandardTree"]

Node = Tuple[int, Tuple[int, ...]]  # (level, position)


class NonStandardTree:
    """Navigation over the non-standard quadtree of an ``N^d`` cube."""

    def __init__(self, size: int, ndim: int) -> None:
        if ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {ndim}")
        self._n = ilog2(size)
        self._size = size
        self._ndim = ndim

    @property
    def size(self) -> int:
        return self._size

    @property
    def ndim(self) -> int:
        return self._ndim

    @property
    def levels(self) -> int:
        return self._n

    @property
    def branching(self) -> int:
        """``D = 2^d``."""
        return 1 << self._ndim

    def _check_node(self, node: Node) -> None:
        level, position = node
        if not 1 <= level <= self._n:
            raise ValueError(f"level must be in [1, {self._n}], got {level}")
        if len(position) != self._ndim:
            raise ValueError(
                f"position must have {self._ndim} axes, got {position}"
            )
        width = self._size >> level
        if any(not 0 <= k < width for k in position):
            raise ValueError(
                f"position {position} out of range at level {level}"
            )

    def parent(self, node: Node) -> Node:
        """Parent node one level up (``ValueError`` at the root level)."""
        self._check_node(node)
        level, position = node
        if level == self._n:
            raise ValueError("the root node has no parent")
        return level + 1, tuple(k // 2 for k in position)

    def children(self, node: Node) -> List[Node]:
        """The ``2^d`` child nodes (empty list at level 1)."""
        self._check_node(node)
        level, position = node
        if level == 1:
            return []
        children: List[Node] = []
        for mask in range(1 << self._ndim):
            child = tuple(
                2 * k + ((mask >> axis) & 1) for axis, k in enumerate(position)
            )
            children.append((level - 1, child))
        return children

    def node_of_point(self, point: Tuple[int, ...], level: int) -> Node:
        """The level-``level`` node whose support contains ``point``."""
        if len(point) != self._ndim:
            raise ValueError(f"point must have {self._ndim} axes, got {point}")
        if any(not 0 <= x < self._size for x in point):
            raise ValueError(f"point {point} out of the domain")
        return level, tuple(x >> level for x in point)

    def root_path_nodes(self, point: Tuple[int, ...]) -> List[Node]:
        """Leaf-to-root node path covering ``point`` (finest first)."""
        return [
            self.node_of_point(point, level)
            for level in range(1, self._n + 1)
        ]

    def root_path_keys(self, point: Tuple[int, ...]) -> List[NonStandardKey]:
        """All detail keys needed to reconstruct ``data[point]``.

        ``(2^d - 1) * n`` keys; the overall average is the extra
        ``+1`` coefficient.
        """
        keys: List[NonStandardKey] = []
        for level, position in self.root_path_nodes(point):
            keys.extend(nonstandard_keys_of_node(level, position))
        return keys

    def reconstruction_weight(
        self, key: NonStandardKey, point: Tuple[int, ...]
    ) -> float:
        """Weight of ``key``'s coefficient in reconstructing ``point``.

        ``±1`` — the product over differenced axes of the half-signs —
        when the key's support contains the point, else ``0``.
        """
        sign = 1.0
        for axis, k in enumerate(key.node):
            coordinate = point[axis]
            if coordinate >> key.level != k:
                return 0.0
            if (key.type_mask >> axis) & 1:
                if (coordinate >> (key.level - 1)) & 1:
                    sign = -sign
        return sign

    def subtree_nodes(
        self, node: Node, height: int | None = None
    ) -> Iterator[Node]:
        """Yield nodes of the subtree at ``node`` (BFS, root first)."""
        if height is not None and height < 1:
            raise ValueError(f"height must be >= 1, got {height}")
        frontier = [node]
        remaining = height
        while frontier:
            yield from frontier
            if remaining is not None:
                remaining -= 1
                if remaining == 0:
                    return
            next_frontier: List[Node] = []
            for current in frontier:
                next_frontier.extend(self.children(current))
            frontier = next_frontier
