"""Non-standard multidimensional Haar transform (paper, Appendix B).

The non-standard form interleaves dimensions: at each level it performs
*one* pairwise averaging/differencing step along every axis of the
current smooth corner cube, then recurses only on the averages.  The
result is stored in the Mallat pyramid layout: after level ``j`` the
smooth cube occupies the ``[0, N/2^j)^d`` corner and the ``2^d - 1``
detail hyperquadrants of that level surround it.

The support intervals of the coefficients form a ``2^d``-ary quadtree
(Figure 7): the node at level ``j`` and position ``(k_1..k_d)`` holds
the ``2^d - 1`` details whose support is the hypercube with corner
``(k_i * 2^j)`` and edge ``2^j``.

The non-standard form requires a *cubic* domain (all extents equal);
non-cubic data streams are handled by the hybrid decomposition of
Section 5.3 (see :mod:`repro.streams.streamnd`).
"""

from __future__ import annotations

import numpy as np

from repro.util.bits import ilog2
from repro.util.validation import as_float_array, require_power_of_two_shape
from repro.wavelet.haar1d import haar_step, haar_unstep
from repro.wavelet.keys import NonStandardKey

__all__ = [
    "nonstandard_dwt",
    "nonstandard_idwt",
    "nonstandard_basis_norm",
    "nonstandard_scaling_norm",
    "require_cubic",
]


def require_cubic(shape) -> int:
    """Validate a cubic power-of-two shape; return the edge length."""
    shape = require_power_of_two_shape(shape)
    edges = set(shape)
    if len(edges) != 1:
        raise ValueError(
            f"the non-standard form requires a cubic domain, got shape {shape}"
        )
    return shape[0]


def _step_axis(cube: np.ndarray, axis: int) -> np.ndarray:
    """One averaging/differencing step along ``axis`` of a cube view."""
    moved = np.moveaxis(cube, axis, -1)
    averages, details = haar_step(moved)
    stacked = np.concatenate([averages, details], axis=-1)
    return np.moveaxis(stacked, -1, axis)


def _unstep_axis(cube: np.ndarray, axis: int) -> np.ndarray:
    """Invert :func:`_step_axis`."""
    moved = np.moveaxis(cube, axis, -1)
    half = moved.shape[-1] // 2
    restored = haar_unstep(moved[..., :half], moved[..., half:])
    return np.moveaxis(restored, -1, axis)


def nonstandard_dwt(data) -> np.ndarray:
    """Non-standard DWT of a cubic array, in Mallat layout.

    The entry at :meth:`NonStandardKey.position` is the detail for that
    key; the origin holds the overall average.
    """
    array = as_float_array(data).copy()
    edge = require_cubic(array.shape)
    ndim = array.ndim
    size = edge
    while size > 1:
        corner = tuple(slice(0, size) for __ in range(ndim))
        cube = array[corner]
        for axis in range(ndim):
            cube = _step_axis(cube, axis)
        array[corner] = cube
        size //= 2
    return array


def nonstandard_idwt(coeffs) -> np.ndarray:
    """Invert :func:`nonstandard_dwt`."""
    array = as_float_array(coeffs).copy()
    edge = require_cubic(array.shape)
    ndim = array.ndim
    size = 2
    while size <= edge:
        corner = tuple(slice(0, size) for __ in range(ndim))
        cube = array[corner]
        for axis in range(ndim - 1, -1, -1):
            cube = _unstep_axis(cube, axis)
        array[corner] = cube
        size *= 2
    return array


def nonstandard_basis_norm(key: NonStandardKey) -> float:
    """L2 norm of the unnormalised non-standard basis function of ``key``.

    The basis function has ``±1`` entries over a support of
    ``2^{level * d}`` cells, so its norm is ``2^{level * d / 2}``.
    """
    return float(2.0 ** (key.level * key.ndim / 2.0))


def nonstandard_scaling_norm(size: int, ndim: int) -> float:
    """L2 norm of the overall-average basis function (all-ones cube)."""
    n = ilog2(size)
    return float(2.0 ** (n * ndim / 2.0))
