"""One-dimensional Haar wavelet transform.

The paper (Section 2.1) uses the *unnormalised* database convention:

* average  ``u = (a + b) / 2``
* detail   ``w = (a - b) / 2``
* inverse  ``a = u + w``, ``b = u - w``

so that ``DWT([3, 5, 7, 5]) == [5, -1, -1, 1]`` (the paper's running
example).  The transformed vector is laid out as

``â[0] = u_{n,0}`` and ``â[2^{n-j} + k] = w_{j,k}``

for decomposition levels ``j = 1..n`` (level ``n`` is the coarsest).
This flat layout coincides with the Mallat pyramid layout, which lets
the standard and non-standard multidimensional forms share the same
per-axis indexing.

Orthonormal (``/ sqrt(2)``) variants are provided because the best
K-term synopsis argument (Section 5.3) is an L2 argument; see
:func:`detail_basis_norm` for how the two conventions relate.

All functions are fully vectorised and also operate batch-wise on the
*last* axis of a multidimensional array, which is what the standard
multidimensional transform builds on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.bits import ilog2
from repro.util.validation import as_float_array

__all__ = [
    "haar_dwt",
    "haar_idwt",
    "haar_dwt_ortho",
    "haar_idwt_ortho",
    "haar_step",
    "haar_unstep",
    "detail_basis_norm",
    "scaling_basis_norm",
]


def haar_step(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One level of pairwise averaging/differencing on the last axis.

    Returns ``(averages, details)``, each of half the input length.
    """
    if data.shape[-1] % 2:
        raise ValueError(
            f"last axis must have even length, got {data.shape[-1]}"
        )
    even = data[..., 0::2]
    odd = data[..., 1::2]
    return (even + odd) / 2.0, (even - odd) / 2.0


def haar_unstep(averages: np.ndarray, details: np.ndarray) -> np.ndarray:
    """Invert :func:`haar_step` on the last axis."""
    if averages.shape != details.shape:
        raise ValueError("averages and details must have the same shape")
    out_shape = averages.shape[:-1] + (2 * averages.shape[-1],)
    out = np.empty(out_shape, dtype=np.float64)
    out[..., 0::2] = averages + details
    out[..., 1::2] = averages - details
    return out


def haar_dwt(data, levels: int | None = None) -> np.ndarray:
    """Full (or partial) unnormalised Haar DWT of the last axis.

    Parameters
    ----------
    data:
        Array whose last axis has power-of-two length ``N = 2^n``.
    levels:
        Number of decomposition levels; defaults to the full ``n``.
        After ``levels`` steps, slots ``[0, N / 2^levels)`` hold the
        remaining scaling coefficients and the rest hold details in the
        pyramid layout.

    Returns a new array; the input is never modified.
    """
    array = as_float_array(data).copy()
    n = ilog2(array.shape[-1])
    if levels is None:
        levels = n
    if not 0 <= levels <= n:
        raise ValueError(f"levels must be in [0, {n}], got {levels}")
    length = array.shape[-1]
    for _ in range(levels):
        averages, details = haar_step(array[..., :length])
        half = length // 2
        array[..., :half] = averages
        array[..., half:length] = details
        length = half
    return array


def haar_idwt(coeffs, levels: int | None = None) -> np.ndarray:
    """Invert :func:`haar_dwt` (last axis, unnormalised convention)."""
    array = as_float_array(coeffs).copy()
    n = ilog2(array.shape[-1])
    if levels is None:
        levels = n
    if not 0 <= levels <= n:
        raise ValueError(f"levels must be in [0, {n}], got {levels}")
    length = array.shape[-1] >> levels
    for _ in range(levels):
        doubled = haar_unstep(
            array[..., :length], array[..., length : 2 * length]
        )
        array[..., : 2 * length] = doubled
        length *= 2
    return array


def haar_dwt_ortho(data, levels: int | None = None) -> np.ndarray:
    """Orthonormal Haar DWT (``(a ± b) / sqrt(2)``) of the last axis.

    Preserves the L2 norm exactly (Parseval), which makes coefficient
    magnitude the right ranking key for best K-term approximation.
    """
    array = as_float_array(data).copy()
    n = ilog2(array.shape[-1])
    if levels is None:
        levels = n
    if not 0 <= levels <= n:
        raise ValueError(f"levels must be in [0, {n}], got {levels}")
    sqrt2 = np.sqrt(2.0)
    length = array.shape[-1]
    for _ in range(levels):
        averages, details = haar_step(array[..., :length])
        half = length // 2
        array[..., :half] = averages * sqrt2
        array[..., half:length] = details * sqrt2
        length = half
    return array


def haar_idwt_ortho(coeffs, levels: int | None = None) -> np.ndarray:
    """Invert :func:`haar_dwt_ortho`."""
    array = as_float_array(coeffs).copy()
    n = ilog2(array.shape[-1])
    if levels is None:
        levels = n
    if not 0 <= levels <= n:
        raise ValueError(f"levels must be in [0, {n}], got {levels}")
    sqrt2 = np.sqrt(2.0)
    length = array.shape[-1] >> levels
    for _ in range(levels):
        doubled = haar_unstep(
            array[..., :length] / sqrt2, array[..., length : 2 * length] / sqrt2
        )
        array[..., : 2 * length] = doubled
        length *= 2
    return array


def detail_basis_norm(level: int) -> float:
    """L2 norm of the unnormalised Haar detail basis vector at ``level``.

    The basis vector of ``w_{j,k}`` has ``2^j`` entries of ``±1``, so its
    norm is ``2^{j/2}``.  Multiplying an unnormalised coefficient by this
    factor yields the orthonormal-convention coefficient magnitude, which
    is the key used for L2-optimal top-K ranking.
    """
    if level < 1:
        raise ValueError(f"detail level must be >= 1, got {level}")
    return float(2.0 ** (level / 2.0))


def scaling_basis_norm(level: int) -> float:
    """L2 norm of the unnormalised Haar scaling basis vector at ``level``.

    The scaling vector of ``u_{j,k}`` has ``2^j`` entries of ``1``.
    """
    if level < 0:
        raise ValueError(f"scaling level must be >= 0, got {level}")
    return float(2.0 ** (level / 2.0))
