"""Standard-form multidimensional Haar transform (paper, Appendix B).

The standard form applies a *full* 1-d decomposition along each
dimension in turn.  Because the 1-d transform is linear, the result is
independent of the dimension order, and every coefficient is a tensor
product of per-dimension 1-d basis functions addressed by the tuple of
per-dimension flat indices (see :mod:`repro.wavelet.keys`).

Dimension sizes may differ but each must be a power of two.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.validation import as_float_array, require_power_of_two_shape
from repro.wavelet.haar1d import haar_dwt, haar_idwt
from repro.wavelet.layout import index_to_detail

__all__ = [
    "standard_dwt",
    "standard_idwt",
    "standard_basis_norm",
    "standard_dwt_axis",
    "standard_idwt_axis",
]


def standard_dwt_axis(data: np.ndarray, axis: int) -> np.ndarray:
    """Fully decompose one axis of ``data`` (all other axes batched)."""
    array = as_float_array(data)
    moved = np.moveaxis(array, axis, -1)
    transformed = haar_dwt(moved)
    return np.moveaxis(transformed, -1, axis)


def standard_idwt_axis(coeffs: np.ndarray, axis: int) -> np.ndarray:
    """Invert :func:`standard_dwt_axis`."""
    array = as_float_array(coeffs)
    moved = np.moveaxis(array, axis, -1)
    restored = haar_idwt(moved)
    return np.moveaxis(restored, -1, axis)


def standard_dwt(data) -> np.ndarray:
    """Standard-form DWT of a multidimensional array.

    Returns a new array of the same shape whose entry at per-axis
    position ``(t_1..t_d)`` is the coefficient with per-axis 1-d flat
    indices ``(t_1..t_d)`` (index 0 = smooth direction).
    """
    array = as_float_array(data)
    require_power_of_two_shape(array.shape)
    for axis in range(array.ndim):
        array = standard_dwt_axis(array, axis)
    return array


def standard_idwt(coeffs) -> np.ndarray:
    """Invert :func:`standard_dwt`."""
    array = as_float_array(coeffs)
    require_power_of_two_shape(array.shape)
    for axis in range(array.ndim):
        array = standard_idwt_axis(array, axis)
    return array


def standard_basis_norm(
    shape: Tuple[int, ...], position: Tuple[int, ...]
) -> float:
    """L2 norm of the (unnormalised) basis function at ``position``.

    The norm is the product over axes of the 1-d basis norms:
    ``2^{j/2}`` for a detail at level ``j`` and ``2^{n/2}`` for the
    per-axis scaling direction.  Multiplying an unnormalised
    coefficient by this factor gives its orthonormal magnitude, the
    L2-optimal top-K ranking key.
    """
    if len(shape) != len(position):
        raise ValueError("shape and position must have equal length")
    log_norm2 = 0  # twice the log2 of the norm, kept integral
    for extent, index in zip(shape, position):
        n = extent.bit_length() - 1
        if index == 0:
            log_norm2 += n
        else:
            level, __ = index_to_detail(n, index)
            log_norm2 += level
    return float(2.0 ** (log_norm2 / 2.0))
