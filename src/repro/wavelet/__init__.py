"""Haar wavelet substrate: 1-d transform, both multidimensional forms,
coefficient addressing and tree navigation."""

from repro.wavelet.haar1d import (
    detail_basis_norm,
    haar_dwt,
    haar_dwt_ortho,
    haar_idwt,
    haar_idwt_ortho,
    haar_step,
    haar_unstep,
    scaling_basis_norm,
)
from repro.wavelet.keys import (
    NonStandardKey,
    nonstandard_keys_of_node,
    standard_position,
)
from repro.wavelet.layout import (
    SCALING_INDEX,
    detail_index,
    index_level,
    index_to_detail,
    level_slice,
    num_details,
    support_of_index,
)
from repro.wavelet.nonstandard import (
    nonstandard_basis_norm,
    nonstandard_dwt,
    nonstandard_idwt,
    nonstandard_scaling_norm,
    require_cubic,
)
from repro.wavelet.quadtree import NonStandardTree
from repro.wavelet.standard import (
    standard_basis_norm,
    standard_dwt,
    standard_dwt_axis,
    standard_idwt,
    standard_idwt_axis,
)
from repro.wavelet.tree import WaveletTree

__all__ = [
    "NonStandardKey",
    "NonStandardTree",
    "SCALING_INDEX",
    "WaveletTree",
    "detail_basis_norm",
    "detail_index",
    "haar_dwt",
    "haar_dwt_ortho",
    "haar_idwt",
    "haar_idwt_ortho",
    "haar_step",
    "haar_unstep",
    "index_level",
    "index_to_detail",
    "level_slice",
    "nonstandard_basis_norm",
    "nonstandard_dwt",
    "nonstandard_idwt",
    "nonstandard_keys_of_node",
    "nonstandard_scaling_norm",
    "num_details",
    "require_cubic",
    "scaling_basis_norm",
    "standard_basis_norm",
    "standard_dwt",
    "standard_dwt_axis",
    "standard_idwt",
    "standard_idwt_axis",
    "standard_position",
    "support_of_index",
]
