"""Coefficient addressing: ``(level, position) <-> flat index``.

The flat 1-d layout (shared by :mod:`repro.wavelet.haar1d` and the
Mallat pyramid of the non-standard form) is::

    index 0            -> u_{n,0}                (the overall average)
    index 2^{n-j} + k   -> w_{j,k}, j in [1, n], k in [0, 2^{n-j})

Level ``n`` is the coarsest (one detail), level ``1`` the finest.
A coefficient of the *standard* multidimensional transform is addressed
by a tuple of per-dimension 1-d indices; a coefficient of the
*non-standard* transform by ``(level, node, type)`` — see
:mod:`repro.wavelet.keys`.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "SCALING_INDEX",
    "detail_index",
    "index_level",
    "index_to_detail",
    "level_slice",
    "num_details",
    "support_of_index",
]

#: Flat index of the overall average ``u_{n,0}``.
SCALING_INDEX = 0


def detail_index(n: int, level: int, position: int) -> int:
    """Flat index of ``w_{level, position}`` in a size ``2^n`` transform."""
    if not 1 <= level <= n:
        raise ValueError(f"level must be in [1, {n}], got {level}")
    width = 1 << (n - level)
    if not 0 <= position < width:
        raise ValueError(
            f"position must be in [0, {width}) at level {level}, got {position}"
        )
    return width + position


def index_to_detail(n: int, index: int) -> Tuple[int, int]:
    """Invert :func:`detail_index`: flat index -> ``(level, position)``.

    Raises ``ValueError`` for index 0 (the scaling coefficient) so the
    caller never silently treats the average as a detail.
    """
    index = int(index)  # accept numpy integers
    if not 1 <= index < (1 << n):
        raise ValueError(f"detail index must be in [1, 2^{n}), got {index}")
    power = index.bit_length() - 1
    return n - power, index - (1 << power)


def index_level(n: int, index: int) -> int:
    """Decomposition level of a flat index; the scaling slot reports ``n``.

    Useful when only the scale matters (e.g. computing basis norms).
    """
    if index == SCALING_INDEX:
        return n
    return index_to_detail(n, index)[0]


def level_slice(n: int, level: int) -> slice:
    """Slice of the flat vector holding all details of ``level``."""
    if not 1 <= level <= n:
        raise ValueError(f"level must be in [1, {n}], got {level}")
    width = 1 << (n - level)
    return slice(width, 2 * width)


def num_details(n: int, level: int) -> int:
    """Number of detail coefficients at ``level``: ``2^{n-level}``."""
    if not 1 <= level <= n:
        raise ValueError(f"level must be in [1, {n}], got {level}")
    return 1 << (n - level)


def support_of_index(n: int, index: int) -> Tuple[int, int]:
    """Support interval ``[start, stop)`` of the coefficient at ``index``.

    Property 1 of the paper: the support of ``w_{j,k}`` (and ``u_{j,k}``)
    is the dyadic interval ``I_{j,k}``; the scaling slot covers the whole
    domain.
    """
    if index == SCALING_INDEX:
        return 0, 1 << n
    level, position = index_to_detail(n, index)
    start = position << level
    return start, start + (1 << level)
