"""Haar wavelet tree navigation (paper, Section 2.2).

The multiresolution property of the Haar basis induces a binary tree on
the detail coefficients: ``w_{j,k}`` has children ``w_{j-1,2k}`` and
``w_{j-1,2k+1}``, and the scaling coefficient ``u_{n,0}`` sits above the
root detail ``w_{n,0}``.  Reconstructing a data point needs exactly the
``n + 1`` coefficients on the leaf-to-root path (Lemma 1), and a range
sum needs at most ``2n + 1`` (Lemma 2).  These walks drive the tiling
access-pattern analysis and the stream "crest" bookkeeping.

All functions below speak *flat indices* (see
:mod:`repro.wavelet.layout`); index 0 is the scaling coefficient.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.util.bits import ilog2
from repro.wavelet.layout import (
    SCALING_INDEX,
    detail_index,
    index_to_detail,
)

__all__ = [
    "WaveletTree",
]


class WaveletTree:
    """Navigation over the wavelet tree of a size ``2^n`` transform.

    The tree is implicit — this class holds only ``n`` — so instances
    are cheap and immutable and can be shared freely.
    """

    def __init__(self, size: int) -> None:
        self._n = ilog2(size)
        self._size = size

    @property
    def size(self) -> int:
        """Domain size ``N = 2^n``."""
        return self._size

    @property
    def levels(self) -> int:
        """Number of decomposition levels ``n``."""
        return self._n

    def parent(self, index: int) -> int:
        """Flat index of the parent coefficient.

        The parent of ``w_{n,0}`` is the scaling coefficient; the
        scaling coefficient has no parent (``ValueError``).
        """
        if index == SCALING_INDEX:
            raise ValueError("the scaling coefficient has no parent")
        level, position = index_to_detail(self._n, index)
        if level == self._n:
            return SCALING_INDEX
        return detail_index(self._n, level + 1, position // 2)

    def children(self, index: int) -> Tuple[int, ...]:
        """Flat indices of the child coefficients (empty at level 1).

        The scaling coefficient has the single child ``w_{n,0}``.
        """
        if index == SCALING_INDEX:
            if self._n == 0:
                return ()
            return (detail_index(self._n, self._n, 0),)
        level, position = index_to_detail(self._n, index)
        if level == 1:
            return ()
        return (
            detail_index(self._n, level - 1, 2 * position),
            detail_index(self._n, level - 1, 2 * position + 1),
        )

    def root_path(self, data_position: int) -> List[int]:
        """Flat indices needed to reconstruct ``data[data_position]``.

        Lemma 1: exactly ``n + 1`` coefficients — the scaling
        coefficient plus the covering detail at every level.
        """
        if not 0 <= data_position < self._size:
            raise ValueError(
                f"data position must be in [0, {self._size}), got {data_position}"
            )
        path = [SCALING_INDEX]
        path.extend(
            detail_index(self._n, level, data_position >> level)
            for level in range(self._n, 0, -1)
        )
        return path

    def reconstruction_signs(self, data_position: int) -> List[float]:
        """Signs pairing with :meth:`root_path` to rebuild a value.

        ``data[i] = u_{n,0} + sum_j sign_j * w_{j, i >> j}`` where the
        sign is ``+1`` when the point lies in the left half of the
        coefficient's support and ``-1`` otherwise.
        """
        if not 0 <= data_position < self._size:
            raise ValueError(
                f"data position must be in [0, {self._size}), got {data_position}"
            )
        signs = [1.0]
        signs.extend(
            -1.0 if (data_position >> (level - 1)) & 1 else 1.0
            for level in range(self._n, 0, -1)
        )
        return signs

    def crest(self, data_position: int) -> List[int]:
        """The *wavelet crest* of a stream at time ``data_position``.

        The detail coefficients whose value can still change when items
        arrive at positions ``>= data_position`` in the time-series
        model — exactly the covering details of ``data_position``
        (Section 5.3).  The scaling coefficient, which also keeps
        changing, is reported separately by callers.
        """
        if not 0 <= data_position < self._size:
            raise ValueError(
                f"data position must be in [0, {self._size}), got {data_position}"
            )
        return [
            detail_index(self._n, level, data_position >> level)
            for level in range(self._n, 0, -1)
        ]

    def subtree(self, index: int, height: int | None = None) -> Iterator[int]:
        """Yield the flat indices of the subtree rooted at ``index``.

        ``height`` limits the walk: ``height=1`` yields only the root,
        ``height=2`` the root and its children, and so on.  ``None``
        walks to the leaves.  The scaling coefficient's subtree is the
        whole tree.
        """
        if height is not None and height < 1:
            raise ValueError(f"height must be >= 1, got {height}")
        frontier = [index]
        remaining = height
        while frontier:
            yield from frontier
            if remaining is not None:
                remaining -= 1
                if remaining == 0:
                    return
            next_frontier: List[int] = []
            for node in frontier:
                next_frontier.extend(self.children(node))
            frontier = next_frontier

    def descendant_count(self, index: int) -> int:
        """Number of detail coefficients in the subtree at ``index``."""
        if index == SCALING_INDEX:
            return self._size - 1
        level, __ = index_to_detail(self._n, index)
        return (1 << level) - 1
