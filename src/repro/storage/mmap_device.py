"""File-backed block device with the exact :class:`BlockDevice` contract.

The simulated :class:`~repro.storage.block_device.BlockDevice` keeps
blocks in a dict and counts I/Os; every byte dies with the process.
:class:`MmapBlockDevice` stores the same fixed-size float64 blocks in a
single memory-mapped file so tile stores survive restarts without the
pickle persist path, while charging :class:`IOStats` *identically* —
the device is a drop-in replacement under the whole arena chain
(``JournaledDevice``, ``DeadlineGuardDevice``, buffer pools, tile
stores) and under the crash matrix.

On-disk layout (little-endian)::

    offset 0     magic            8 bytes  b"RPROMMAP"
           8     format_version   u32      (currently 1)
          12     block_slots      u32
          16     next_id          u64      allocated-block high-water mark
          24     header_crc       u32      CRC32 of bytes [0, 24)
          28     zero padding up to HEADER_BYTES
    HEADER_BYTES block 0, block 1, ...     block_slots float64 each

The header CRC makes a torn header (a crash mid-rewrite of the metadata
page) *detectable* on reopen instead of silently mis-sizing the device:
:class:`MmapFormatError` is raised and the caller decides.  Block
payloads carry no per-block checksum here — that is the journal layer's
job (:class:`~repro.storage.journal.JournaledDevice` keeps CRC+abs-sum
summaries and raises ``CorruptBlockError`` on torn reads), and it runs
unmodified on top of this device.

Reads and writes go through zero-copy ``np.frombuffer`` views of the
mapping internally; :meth:`read_block` still returns a **private copy**
exactly like the simulated device, so no caller can alias device
memory through the counted path.  ``allocate`` grows the file
geometrically (ftruncate + mmap resize) and persists ``next_id``
eagerly — growth is a metadata operation and charges nothing, matching
the simulated device's free ``allocate``.

Thread notes: serving stacks read concurrently with a single writer
(``ServingHub`` serialises update batches but never queries), and a
writer that grows the file must remap — so every block I/O holds the
shared side of an internal reader-writer gate and the resize in
:meth:`_ensure_capacity` holds the exclusive side.  Without the gate a
reader could observe the view mid-teardown (``self._data is None``) or
keep a transient buffer export alive that makes ``mmap.resize`` raise
``BufferError`` and abort the writer.  Allocation itself
(``allocate``/``restore_blocks``/``close``) still assumes a single
writer, exactly like the simulated device.

Fork notes (the process-parallel scatter pool relies on these): the
mapping is ``MAP_SHARED``, so a forked child that writes through an
inherited :class:`MmapBlockDevice` makes those bytes visible to the
parent and durable in the file.  A mapping must **not** be resized
while forked children hold it — pre-allocate every block the batch
will touch before forking (``repro.transform.procpool`` does), and
only the parent should :meth:`close`.  The gate is ordinary per-process
thread state; children inherit an open gate and never resize.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Optional

import numpy as np

from repro.obs.tracer import charge as _trace_charge
from repro.storage.iostats import IOStats

__all__ = ["MmapBlockDevice", "MmapFormatError"]

MAGIC = b"RPROMMAP"
FORMAT_VERSION = 1
HEADER_BYTES = 4096  # one page: blocks start page-aligned
_HEADER_STRUCT = struct.Struct("<8sIIQ")  # magic, version, slots, next_id
_CRC_STRUCT = struct.Struct("<I")
_FLOAT_BYTES = 8


class MmapFormatError(ValueError):
    """The file is not a valid device image (bad magic, unsupported
    version, mismatched geometry, or a torn header CRC)."""


class _ResizeGate:
    """Reader-writer gate isolating block I/O from mapping resize.

    Block reads/writes take :meth:`shared` (concurrent with each
    other); the resize in ``_ensure_capacity`` and the teardown in
    ``close`` take :meth:`exclusive`.  An incoming resize blocks new
    shared entries, waits for in-flight ones to drain, and only then
    tears the view down — so no reader ever sees ``_data is None`` and
    no reader's transient export survives into ``mmap.resize``.
    """

    __slots__ = (
        "_cond",
        "_readers",
        "_resizing",
        "exclusive_acquires",
        "writer_wait_s",
    )

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._resizing = False
        # Writer-side contention telemetry: how often the exclusive
        # side was taken and how long writers spent waiting for other
        # writers plus in-flight readers to drain.  Read without the
        # condition lock by telemetry() — a stale float is fine.
        self.exclusive_acquires = 0
        self.writer_wait_s = 0.0

    @contextmanager
    def shared(self):
        with self._cond:
            while self._resizing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        entered = time.perf_counter()
        with self._cond:
            while self._resizing:
                self._cond.wait()
            self._resizing = True
            while self._readers:
                self._cond.wait()
            self.exclusive_acquires += 1
            self.writer_wait_s += time.perf_counter() - entered
        try:
            yield
        finally:
            with self._cond:
                self._resizing = False
                self._cond.notify_all()


class MmapBlockDevice:
    """An append-allocated array of fixed-size blocks in one mmap file.

    Parameters
    ----------
    path:
        Backing file.  Created (with a fresh header) when missing or
        empty; otherwise reopened and validated against the header.
    block_slots:
        Float64 slots per block.  Required when creating; when
        reopening it is checked against the stored header (``None``
        adopts the stored value).
    stats:
        Counter object to charge I/Os to; a fresh one is created when
        omitted.  Reassignable — forked scatter workers install their
        own :class:`IOStats` and report deltas back to the parent.
    capacity_blocks:
        Initial file capacity (in blocks) when creating; the file
        grows geometrically as :meth:`allocate` passes it.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        block_slots: Optional[int] = None,
        stats: Optional[IOStats] = None,
        capacity_blocks: int = 64,
    ) -> None:
        self._path = os.fspath(path)
        self.stats = stats if stats is not None else IOStats()
        self._closed = False
        self._gate = _ResizeGate()
        self._growths = 0
        self._msyncs = 0
        self._msync_seconds = 0.0
        existing = (
            os.path.exists(self._path)
            and os.path.getsize(self._path) > 0
        )
        # "a+b" would position appends at EOF; open read-write and
        # create explicitly so offset arithmetic stays simple.
        flags = os.O_RDWR | (0 if existing else os.O_CREAT)
        self._fd = os.open(self._path, flags, 0o644)
        try:
            if existing:
                self._open_existing(block_slots)
            else:
                if block_slots is None:
                    raise ValueError(
                        "block_slots is required when creating "
                        f"{self._path!r}"
                    )
                if block_slots < 1:
                    raise ValueError(
                        f"block_slots must be >= 1, got {block_slots}"
                    )
                self._block_slots = int(block_slots)
                self._next_id = 0
                self._capacity = max(1, int(capacity_blocks))
                os.ftruncate(self._fd, self._file_bytes(self._capacity))
                self._mm = mmap.mmap(self._fd, 0)
                self._data = self._map_data()
                self._write_header()
        except BaseException:
            os.close(self._fd)
            raise

    # ------------------------------------------------------------------
    # header / geometry
    # ------------------------------------------------------------------

    def _file_bytes(self, blocks: int) -> int:
        return HEADER_BYTES + blocks * self._block_slots * _FLOAT_BYTES

    def _block_bytes(self) -> int:
        return self._block_slots * _FLOAT_BYTES

    def _map_data(self) -> np.ndarray:
        """One persistent zero-copy 2-d view over the block region —
        per-call ``np.frombuffer`` would dominate small-block I/O."""
        return np.frombuffer(
            self._mm,
            dtype=np.float64,
            count=self._capacity * self._block_slots,
            offset=HEADER_BYTES,
        ).reshape(self._capacity, self._block_slots)

    def _write_header(self) -> None:
        packed = _HEADER_STRUCT.pack(
            MAGIC, FORMAT_VERSION, self._block_slots, self._next_id
        )
        crc = zlib.crc32(packed) & 0xFFFFFFFF
        self._mm[: _HEADER_STRUCT.size] = packed
        end = _HEADER_STRUCT.size + _CRC_STRUCT.size
        self._mm[_HEADER_STRUCT.size : end] = _CRC_STRUCT.pack(crc)

    def _open_existing(self, block_slots: Optional[int]) -> None:
        size = os.path.getsize(self._path)
        if size < HEADER_BYTES:
            raise MmapFormatError(
                f"{self._path!r} is {size} bytes — shorter than the "
                f"{HEADER_BYTES}-byte header; not a device image"
            )
        self._mm = mmap.mmap(self._fd, 0)
        packed = bytes(self._mm[: _HEADER_STRUCT.size])
        end = _HEADER_STRUCT.size + _CRC_STRUCT.size
        (stored_crc,) = _CRC_STRUCT.unpack(
            bytes(self._mm[_HEADER_STRUCT.size : end])
        )
        crc = zlib.crc32(packed) & 0xFFFFFFFF
        if crc != stored_crc:
            self._mm.close()
            raise MmapFormatError(
                f"{self._path!r} header CRC mismatch "
                f"(stored {stored_crc:#010x}, computed {crc:#010x}) — "
                f"torn or corrupted header"
            )
        magic, version, slots, next_id = _HEADER_STRUCT.unpack(packed)
        if magic != MAGIC:
            self._mm.close()
            raise MmapFormatError(
                f"{self._path!r} has magic {magic!r}, expected {MAGIC!r}"
            )
        if version != FORMAT_VERSION:
            self._mm.close()
            raise MmapFormatError(
                f"{self._path!r} is format version {version}; this "
                f"build reads version {FORMAT_VERSION}"
            )
        if block_slots is not None and slots != block_slots:
            self._mm.close()
            raise MmapFormatError(
                f"{self._path!r} stores {slots} slots per block, "
                f"caller expected {block_slots}"
            )
        self._block_slots = int(slots)
        self._next_id = int(next_id)
        data_bytes = size - HEADER_BYTES
        self._capacity = data_bytes // self._block_bytes()
        if self._capacity < self._next_id:
            self._mm.close()
            raise MmapFormatError(
                f"{self._path!r} header claims {next_id} blocks but the "
                f"file only holds {self._capacity} — truncated image"
            )
        self._data = self._map_data()

    def _ensure_capacity(self, blocks: int) -> None:
        if blocks <= self._capacity:
            return
        new_capacity = max(blocks, self._capacity * 2, 1)
        with self._gate.exclusive():
            # Drop our own view before resizing; any *caller-held*
            # view_block() export makes resize raise BufferError, which
            # is the intended leak detector.
            self._data = None
            self._mm.flush()
            os.ftruncate(self._fd, self._file_bytes(new_capacity))
            try:
                self._mm.resize(self._file_bytes(new_capacity))
            except BufferError:
                # A leaked export blocked the resize.  Remap the old
                # geometry (and undo the file grow) so the device stays
                # usable once the caller drops the view — the leak is
                # reported, not made permanent.
                os.ftruncate(self._fd, self._file_bytes(self._capacity))
                self._data = self._map_data()
                raise
            self._capacity = new_capacity
            self._data = self._map_data()
            self._growths += 1

    # ------------------------------------------------------------------
    # BlockDevice contract
    # ------------------------------------------------------------------

    @property
    def block_slots(self) -> int:
        """Coefficient slots per block."""
        return self._block_slots

    @property
    def num_blocks(self) -> int:
        """Number of allocated blocks."""
        return self._next_id

    @property
    def path(self) -> str:
        """The backing file."""
        return self._path

    @property
    def capacity_blocks(self) -> int:
        """Blocks the file can hold before the next resize."""
        return self._capacity

    @property
    def closed(self) -> bool:
        return self._closed

    def allocate(self) -> int:
        """Allocate a zero-filled block and return its id (no I/O
        charged — allocation is metadata, the first write pays)."""
        block_id = self._next_id
        self._next_id += 1
        try:
            self._ensure_capacity(self._next_id)
        except BaseException:
            # A failed grow (e.g. the BufferError leak detector) must
            # not leave the cursor pointing past the mapped region.
            self._next_id = block_id
            raise
        self._write_header()
        return block_id

    def _check_id(self, block_id: int) -> None:
        if not 0 <= block_id < self._next_id:
            raise KeyError(f"block {block_id} was never allocated")

    def read_block(self, block_id: int) -> np.ndarray:
        """Read a block (one block-read I/O).  Returns a private copy."""
        self._check_id(block_id)
        self.stats.block_reads += 1
        _trace_charge("block_reads")
        with self._gate.shared():
            return self._data[block_id].copy()

    def peek_block(self, block_id: int) -> np.ndarray:
        """Uncounted copy of a block's current content.  Used by
        durability layers (checksum scans, torn-write simulation),
        never by algorithms — algorithmic reads go through
        :meth:`read_block` and are charged."""
        self._check_id(block_id)
        with self._gate.shared():
            return self._data[block_id].copy()

    def view_block(self, block_id: int) -> np.ndarray:
        """Uncounted **zero-copy, read-only** view of a block.

        For durability/inspection tooling that must not double memory;
        the view aliases the mapping, so it must be dropped before the
        device can :meth:`close` or grow (both raise ``BufferError``
        while exported views are alive — a leak detector, not a bug).
        Counted algorithmic reads use :meth:`read_block`."""
        self._check_id(block_id)
        with self._gate.shared():
            view = self._data[block_id].view()
        view.flags.writeable = False
        return view

    def write_block(self, block_id: int, data: np.ndarray) -> None:
        """Write a full block (one block-write I/O)."""
        self._check_id(block_id)
        if data.shape != (self._block_slots,):
            raise ValueError(
                f"block data must have shape ({self._block_slots},), "
                f"got {data.shape}"
            )
        self.stats.block_writes += 1
        _trace_charge("block_writes")
        with self._gate.shared():
            self._data[block_id] = data

    def write_blocks(
        self, block_ids: np.ndarray, rows: np.ndarray
    ) -> None:
        """Write many full blocks at once (one block-write I/O *each*).

        ``rows[i]`` lands in ``block_ids[i]``.  Identical accounting to
        ``len(block_ids)`` calls of :meth:`write_block`; the batch form
        lets bulk loaders scatter a contiguous assembled buffer into
        the mapping with one fancy row assignment.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self._block_slots:
            raise ValueError(
                f"rows must have shape (*, {self._block_slots}), "
                f"got {rows.shape}"
            )
        block_ids = np.asarray(block_ids, dtype=np.int64)
        if block_ids.shape[0] != rows.shape[0]:
            raise ValueError(
                f"{block_ids.shape[0]} block ids for "
                f"{rows.shape[0]} rows"
            )
        if block_ids.size and not (
            0 <= int(block_ids.min())
            and int(block_ids.max()) < self._next_id
        ):
            raise KeyError("write_blocks targets an unallocated block")
        count = rows.shape[0]
        self.stats.block_writes += count
        _trace_charge("block_writes", count)
        with self._gate.shared():
            self._data[block_ids] = rows

    def bytes_used(self, coefficient_bytes: int = 8) -> int:
        """Approximate on-disk footprint of the allocated blocks."""
        return self.num_blocks * self._block_slots * coefficient_bytes

    def dump_blocks(self) -> np.ndarray:
        """Uncounted snapshot of every block as a 2-d array.  Used by
        persistence, not by algorithms."""
        with self._gate.shared():
            return self._data[: self._next_id].copy()

    def restore_blocks(self, blocks: np.ndarray) -> None:
        """Uncounted bulk restore (inverse of :meth:`dump_blocks`)."""
        if blocks.ndim != 2 or blocks.shape[1] != self._block_slots:
            raise ValueError(
                f"blocks must have shape (*, {self._block_slots}), "
                f"got {blocks.shape}"
            )
        count = blocks.shape[0]
        self._ensure_capacity(count)
        self._next_id = count
        with self._gate.shared():
            self._data[:count] = blocks
        self._write_header()

    # ------------------------------------------------------------------
    # durability / lifecycle (beyond the simulated contract)
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Flush the header and every dirty page to the backing file."""
        started = time.perf_counter()
        self._write_header()
        self._mm.flush()
        self._msyncs += 1
        self._msync_seconds += time.perf_counter() - started

    def telemetry(self) -> dict:
        """Arena internals as a JSON-ready dict (satellite metrics for
        engine snapshots and ``/metrics``): growth/msync counters, the
        mapped footprint, and the resize gate's writer-side contention.
        Reading is unlocked — values are monotone counters and a
        slightly stale read is acceptable for telemetry."""
        return {
            "growths": self._growths,
            "capacity_blocks": self._capacity,
            "allocated_blocks": self._next_id,
            "mapped_bytes": self._file_bytes(self._capacity),
            "msyncs": self._msyncs,
            "msync_seconds": self._msync_seconds,
            "resize_wait_s": self._gate.writer_wait_s,
            "resize_exclusive_acquires": self._gate.exclusive_acquires,
        }

    def close(self) -> None:
        """Sync and release the mapping.  Idempotent.

        A live :meth:`view_block` export makes the unmap raise
        ``BufferError`` (the leak detector); the device then stays
        open and fully usable, and can be closed again once the view
        is dropped.
        """
        if self._closed:
            return
        with self._gate.exclusive():
            self.sync()
            self._data = None
            try:
                self._mm.close()
            except BufferError:
                self._data = self._map_data()
                raise
        self._closed = True
        os.close(self._fd)

    def __enter__(self) -> "MmapBlockDevice":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
