"""Storage substrate: simulated block device, buffer pool, tile store,
and the dense/tiled coefficient stores the maintenance algorithms run
against."""

from repro.storage.block_device import BlockDevice
from repro.storage.buffer_pool import BufferPool
from repro.storage.chunkfile import ChunkedDataFile
from repro.storage.degrade import (
    DegradedCollector,
    MissingBlock,
    collecting_degraded,
)
from repro.storage.dense import DenseNonStandardStore, DenseStandardStore
from repro.storage.iostats import IOStats
from repro.storage.journal import (
    CorruptBlockError,
    JournaledDevice,
    RecoveryReport,
    WriteAheadJournal,
)
from repro.storage.mmap_device import MmapBlockDevice, MmapFormatError
from repro.storage.naive import NaiveBlockedStandardStore
from repro.storage.persist import (
    PersistFormatError,
    load_nonstandard_store,
    load_standard_store,
    save_nonstandard_store,
    save_standard_store,
)
from repro.storage.tile_store import TileStore
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore

__all__ = [
    "BlockDevice",
    "BufferPool",
    "ChunkedDataFile",
    "CorruptBlockError",
    "DegradedCollector",
    "DenseNonStandardStore",
    "DenseStandardStore",
    "IOStats",
    "JournaledDevice",
    "MissingBlock",
    "MmapBlockDevice",
    "MmapFormatError",
    "NaiveBlockedStandardStore",
    "PersistFormatError",
    "RecoveryReport",
    "TileStore",
    "WriteAheadJournal",
    "collecting_degraded",
    "load_nonstandard_store",
    "load_standard_store",
    "save_nonstandard_store",
    "save_standard_store",
    "TiledNonStandardStore",
    "TiledStandardStore",
]
