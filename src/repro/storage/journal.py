"""Crash-consistent durability: block checksums + write-ahead journal.

The simulated device makes an interrupted flush *silently* corrupting:
a torn write leaves half-new half-old coefficients that read back as
plausible floats.  This module adds the two classic defences, layered
over any block device as :class:`JournaledDevice`:

**Checksums.**  Every successful block write records a CRC32 of the
block's content in the device's metadata; every read verifies it.  A
mismatch raises :class:`CorruptBlockError` — corruption becomes a
detected, typed failure, never a wrong answer.  Alongside the CRC the
metadata keeps the block's coefficient L1 norm, which is what lets
degraded queries (:mod:`repro.storage.degrade`) bound the error a
missing block can contribute.

**Write-ahead journal with group commit.**  A flush of ``D`` dirty
blocks appends ``D`` data records then one commit record to the
journal (``D + 1`` ``journal_writes``), and only then applies the
block writes to the device; after a fully applied group the journal is
checkpointed (truncated — a metadata operation, uncounted).  The
journal is a single append-only byte log with per-record CRCs, so a
crash at *any* point leaves one of exactly three states, all
recoverable by :meth:`JournaledDevice.recover`:

* torn/uncommitted tail — discarded; the device was never touched by
  the group (applies happen strictly after commit), so the store is
  bit-identical to its pre-flush durable state;
* committed but partially applied (possibly with torn block writes) —
  the group is replayed from the journal payloads, which are
  idempotent full-block writes; the store reaches the post-flush state
  bit-exactly;
* applied but not yet checkpointed — replay is a no-op rewrite of the
  same bytes.

The crash matrix in ``tests/test_crash_matrix.py`` proves this at
every site the protocol visits (via :class:`repro.fault.crash.CrashPlan`).

Everything is opt-in: wrap a store's device with
``store.tile_store.wrap_device(JournaledDevice)`` to enable it.
Without the wrapper no code path changes and no counter moves.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fault.crash import CrashPlan
from repro.obs.tracer import charge as _trace_charge, get_tracer

__all__ = [
    "BlockSummary",
    "CorruptBlockError",
    "JournaledDevice",
    "RecoveryReport",
    "WriteAheadJournal",
    "block_checksum",
]


class CorruptBlockError(IOError):
    """A block's content failed checksum verification on read."""

    def __init__(self, block_id: int, expected: int, actual: int) -> None:
        super().__init__(
            f"block {block_id} failed checksum verification "
            f"(expected 0x{expected:08x}, read 0x{actual:08x})"
        )
        self.block_id = block_id
        self.expected = expected
        self.actual = actual


def block_checksum(data: np.ndarray) -> int:
    """CRC32 of a block's float64 content."""
    return zlib.crc32(np.ascontiguousarray(data, dtype=np.float64).tobytes())


@dataclass(frozen=True)
class BlockSummary:
    """Durable per-block metadata: integrity + degradation bound.

    ``abs_sum`` (the L1 norm of the block's coefficients) bounds the
    contribution the block can make to any reconstruction whose
    per-coefficient weights have magnitude <= W:  ``|error| <= W *
    abs_sum``.  It is what degraded queries report when the block
    itself is unreadable.
    """

    crc: int
    abs_sum: float


def _summarise(data: np.ndarray) -> BlockSummary:
    arr = np.ascontiguousarray(data, dtype=np.float64)
    return BlockSummary(
        crc=zlib.crc32(arr.tobytes()), abs_sum=float(np.abs(arr).sum())
    )


# ----------------------------------------------------------------------
# journal byte format
# ----------------------------------------------------------------------

_JOURNAL_MAGIC = b"RWJ1"
_HEADER = struct.Struct("<4sQ")  # magic, truncated_upto_seq
#: record header: marker, type, group seq, block id, payload length, crc
_RECORD = struct.Struct("<BBQqQI")
_REC_MARK = 0xA5
_REC_DATA = 1
_REC_COMMIT = 2


@dataclass
class RecoveryReport:
    """What :meth:`JournaledDevice.recover` found and did."""

    replayed_groups: int = 0
    replayed_records: int = 0
    discarded_records: int = 0
    discarded_bytes: int = 0
    last_committed_seq: int = 0
    corrupt_blocks: List[int] = field(default_factory=list)
    replayed_block_ids: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No checksum failures remain after recovery."""
        return not self.corrupt_blocks


class WriteAheadJournal:
    """Append-only byte log with per-record CRCs and group commits.

    Lives in memory (the simulation's "separate journal device"); the
    byte image — :meth:`to_bytes` / :meth:`from_bytes` — is the durable
    artifact a crash harness carries across a simulated restart.  The
    header records ``truncated_upto``: the highest group sequence whose
    records have been checkpointed away, which is how recovery can tell
    "group applied and checkpointed" apart from "group never started"
    even though both leave an empty log.
    """

    def __init__(self) -> None:
        self.truncated_upto = 0
        self._next_seq = 1
        self._buf = bytearray()
        self.appends = 0
        self._group_start = 0
        #: Observer fired after a commit record lands — the group is
        #: durable at that instant — with ``(seq, record_bytes)`` where
        #: ``record_bytes`` is the group's complete journal image (data
        #: records + commit record).  This is the replication tap: a
        #: :class:`~repro.replica.shipper.JournalShipper` frames the
        #: bytes and streams them to followers *before* the group is
        #: applied locally, so an acknowledged batch has always been
        #: offered to every attached follower.  ``None`` (the default)
        #: costs one attribute check per commit.
        self.on_commit: Optional[Callable[[int, bytes], None]] = None

    # -- sequence management -------------------------------------------

    @property
    def next_seq(self) -> int:
        """Sequence number the next group will carry."""
        return self._next_seq

    def begin_group(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        self._group_start = len(self._buf)
        return seq

    # -- append path ----------------------------------------------------

    def _record_bytes(
        self, rec_type: int, seq: int, block_id: int, payload: bytes
    ) -> bytes:
        crc = zlib.crc32(
            struct.pack("<BQq", rec_type, seq, block_id) + payload
        )
        header = _RECORD.pack(
            _REC_MARK, rec_type, seq, block_id, len(payload), crc
        )
        return header + payload

    def _append(
        self, record: bytes, site: str, crash: Optional[CrashPlan]
    ) -> None:
        if crash is not None:
            # A dying process can leave half a record behind.
            torn = record[: max(1, len(record) // 2)]
            crash.point(
                f"{site}.torn", before=lambda: self._buf.extend(torn)
            )
        self._buf.extend(record)
        self.appends += 1
        if crash is not None:
            crash.point(f"{site}.appended")

    def append_data(
        self,
        seq: int,
        block_id: int,
        payload: bytes,
        crash: Optional[CrashPlan] = None,
    ) -> None:
        self._append(
            self._record_bytes(_REC_DATA, seq, block_id, payload),
            "journal.data",
            crash,
        )

    def append_commit(
        self, seq: int, count: int, crash: Optional[CrashPlan] = None
    ) -> None:
        self._append(
            self._record_bytes(_REC_COMMIT, seq, count, b""),
            "journal.commit",
            crash,
        )
        observer = self.on_commit
        if observer is not None:
            observer(seq, bytes(self._buf[self._group_start :]))

    def ingest(self, records: bytes) -> None:
        """Append already-encoded record bytes (a shipped group) to the
        log.  The bytes carry their own per-record CRCs, so a corrupt
        or torn group is discarded by :meth:`parse` exactly as a local
        torn tail would be.  This is the follower-side replay inlet:
        ingest a group's frame payload, then let
        :meth:`JournaledDevice.recover` apply it."""
        self._buf.extend(records)
        self.appends += 1

    def checkpoint(self, seq: int) -> None:
        """Drop all records (the applied groups) and remember ``seq`` as
        durably applied.  Treated as atomic — a real implementation
        would rename a fresh segment into place."""
        self.truncated_upto = max(self.truncated_upto, seq)
        # Keep group numbering monotone past replayed groups, so a
        # follower promoted to primary continues the sequence instead
        # of reissuing seqs its own followers have already applied.
        self._next_seq = max(self._next_seq, seq + 1)
        self._buf = bytearray()

    def reset_to(self, seq: int) -> None:
        """Adopt ``seq`` as the durable horizon (snapshot install):
        everything up to ``seq`` is already applied to the device by
        other means, the log is empty, and the next group is
        ``seq + 1``."""
        self.truncated_upto = seq
        self._next_seq = seq + 1
        self._buf = bytearray()
        self._group_start = 0

    # -- parse / recovery ----------------------------------------------

    def parse(
        self,
    ) -> Tuple[Dict[int, List[Tuple[int, bytes]]], List[int], int, int]:
        """Decode the log.

        Returns ``(groups, committed_seqs, discarded_records,
        discarded_bytes)``: data payloads per group sequence, the
        sequences with a valid commit record, and how much of the tail
        was discarded as torn/corrupt.  Parsing stops at the first
        malformed record — everything after it is unreachable tail by
        construction (the log is append-only).
        """
        groups: Dict[int, List[Tuple[int, bytes]]] = {}
        committed: List[int] = []
        offset = 0
        data = bytes(self._buf)
        valid_upto = 0
        records = 0
        while offset + _RECORD.size <= len(data):
            mark, rec_type, seq, block_id, length, crc = _RECORD.unpack_from(
                data, offset
            )
            if mark != _REC_MARK or rec_type not in (_REC_DATA, _REC_COMMIT):
                break
            payload_start = offset + _RECORD.size
            payload_end = payload_start + length
            if payload_end > len(data):
                break  # torn payload
            payload = data[payload_start:payload_end]
            expected = zlib.crc32(
                struct.pack("<BQq", rec_type, seq, block_id) + payload
            )
            if expected != crc:
                break  # torn/corrupt record
            if rec_type == _REC_DATA:
                groups.setdefault(seq, []).append((block_id, payload))
            else:
                committed.append(seq)
            offset = payload_end
            valid_upto = offset
            records += 1
        tail_records = 0
        # Count whole-looking records in the discarded tail for reporting
        # (best effort; the tail may be arbitrary garbage).
        discarded_bytes = len(data) - valid_upto
        for seq, recs in groups.items():
            if seq not in committed:
                tail_records += len(recs)
        return groups, committed, tail_records, discarded_bytes

    # -- persistence of the journal itself ------------------------------

    def to_bytes(self) -> bytes:
        """The durable byte image (header + log)."""
        return _HEADER.pack(_JOURNAL_MAGIC, self.truncated_upto) + bytes(
            self._buf
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WriteAheadJournal":
        """Reopen a journal from its byte image (inverse of
        :meth:`to_bytes`).  A blob too short to hold the header is
        treated as an empty journal (nothing was ever durable)."""
        journal = cls()
        if len(blob) < _HEADER.size:
            return journal
        magic, truncated_upto = _HEADER.unpack_from(blob, 0)
        if magic != _JOURNAL_MAGIC:
            return journal
        journal.truncated_upto = truncated_upto
        journal._buf = bytearray(blob[_HEADER.size :])
        groups, committed, __, __ = journal.parse()
        highest = max(
            [truncated_upto]
            + list(groups.keys())
            + committed
        )
        journal._next_seq = highest + 1
        return journal

    @property
    def log_bytes(self) -> int:
        return len(self._buf)


# ----------------------------------------------------------------------
# the device wrapper
# ----------------------------------------------------------------------


class JournaledDevice:
    """Checksummed, write-ahead-journaled view of a block device.

    Parameters
    ----------
    inner:
        The wrapped device.  Fault injection
        (:class:`~repro.fault.device.FaultyBlockDevice`) goes *below*
        this layer so that torn writes and bit-flips are subject to
        checksum verification.
    journal:
        An existing :class:`WriteAheadJournal` (e.g. recovered bytes
        after a simulated restart); a fresh one when omitted.
    crash:
        Optional :class:`~repro.fault.crash.CrashPlan` visited at every
        protocol step — the crash-matrix hook.  ``None`` (the default)
        costs one attribute check per flush.

    On construction the per-block summaries are rebuilt from the
    device's current content (uncounted peeks): after a crash the map
    is exactly as trustworthy as the blocks themselves, and
    :meth:`recover` then repairs both from the journal.
    """

    def __init__(
        self,
        inner,
        journal: Optional[WriteAheadJournal] = None,
        crash: Optional[CrashPlan] = None,
    ) -> None:
        self._inner = inner
        self.journal = journal if journal is not None else WriteAheadJournal()
        self.crash = crash
        self._summaries: Dict[int, BlockSummary] = {}
        self._zero_summary = _summarise(
            np.zeros(inner.block_slots, dtype=np.float64)
        )
        self._rebuild_summaries()

    def _rebuild_summaries(self) -> None:
        self._summaries.clear()
        for block_id in range(self._inner.num_blocks):
            # lint: uncounted (checksum bootstrap over pre-existing blocks)
            data = self._inner.peek_block(block_id)
            if np.any(data):
                self._summaries[block_id] = _summarise(data)

    # ------------------------------------------------------------------
    # pass-through surface
    # ------------------------------------------------------------------

    @property
    def inner(self):
        return self._inner

    @property
    def stats(self):
        return self._inner.stats

    @property
    def block_slots(self) -> int:
        return self._inner.block_slots

    @property
    def num_blocks(self) -> int:
        return self._inner.num_blocks

    def allocate(self) -> int:
        return self._inner.allocate()

    def peek_block(self, block_id: int) -> np.ndarray:
        return self._inner.peek_block(block_id)

    def dump_blocks(self) -> np.ndarray:
        return self._inner.dump_blocks()

    def restore_blocks(self, blocks: np.ndarray) -> None:
        self._inner.restore_blocks(blocks)
        self._rebuild_summaries()

    def bytes_used(self, coefficient_bytes: int = 8) -> int:
        return self._inner.bytes_used(coefficient_bytes)

    # ------------------------------------------------------------------
    # verified reads
    # ------------------------------------------------------------------

    def expected_summary(self, block_id: int) -> BlockSummary:
        """The durable summary of ``block_id`` (zero-block summary for
        blocks never successfully written)."""
        return self._summaries.get(block_id, self._zero_summary)

    def block_summary(self, block_id: int) -> BlockSummary:
        """Alias used by the degraded-read path."""
        return self.expected_summary(block_id)

    def read_block(self, block_id: int) -> np.ndarray:
        data = self._inner.read_block(block_id)
        expected = self.expected_summary(block_id).crc
        actual = block_checksum(data)
        if actual != expected:
            raise CorruptBlockError(block_id, expected, actual)
        return data

    # ------------------------------------------------------------------
    # journaled writes
    # ------------------------------------------------------------------

    def write_block(self, block_id: int, data: np.ndarray) -> None:
        self.write_batch([(block_id, data)])

    def write_batch(
        self, pairs: Sequence[Tuple[int, np.ndarray]]
    ) -> None:
        """Group-commit ``pairs`` of ``(block_id, data)``.

        Protocol: journal every data record, journal the commit record
        (the group is durable from this instant), apply the block
        writes to the device, checkpoint the journal.  Charges
        ``len(pairs) + 1`` ``journal_writes``; the applies charge their
        usual ``block_writes``.
        """
        if not pairs:
            return
        crash = self.crash
        stats = self._inner.stats
        arrays = [
            np.ascontiguousarray(data, dtype=np.float64)
            for __, data in pairs
        ]
        with get_tracer().span(
            "journal.commit_group", blocks=len(pairs)
        ) as span:
            seq = self.journal.begin_group()
            span.set(seq=seq)
            for (block_id, __), arr in zip(pairs, arrays):
                self.journal.append_data(
                    seq, block_id, arr.tobytes(), crash=crash
                )
                stats.journal_writes += 1
                _trace_charge("journal_writes")
            self.journal.append_commit(seq, len(pairs), crash=crash)
            stats.journal_writes += 1
            _trace_charge("journal_writes")
            if crash is not None:
                crash.point("group.committed")
            for (block_id, __), arr in zip(pairs, arrays):
                self._apply(block_id, arr, crash)
            self.journal.checkpoint(seq)
            if crash is not None:
                crash.point("checkpoint.done")

    def _apply(
        self, block_id: int, arr: np.ndarray, crash: Optional[CrashPlan]
    ) -> None:
        if crash is not None:
            # A dying process can leave a half-written block behind.
            def tear() -> None:
                # lint: uncounted (crash simulation of a half-written block)
                old = self._inner.peek_block(block_id)
                keep = arr.size // 2
                torn = np.concatenate([arr[:keep], old[keep:]])
                self._inner.write_block(block_id, torn)

            crash.point("apply.torn", before=tear)
        self._inner.write_block(block_id, arr)
        self._summaries[block_id] = _summarise(arr)
        if crash is not None:
            crash.point("apply.applied")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(
        self,
        scan: bool = True,  # lint: allow=flag-hygiene (post-crash verification defaults on; followers opt out per-group and re-scan at promotion)
    ) -> RecoveryReport:
        """Replay committed journal groups; discard torn tails.

        Idempotent: replaying an already-applied group rewrites the
        same bytes.  Replayed writes charge ``block_writes`` (they are
        real device I/O).  Ends with a full checksum scan; a clean
        report (``report.clean``) certifies the store.  Steady-state
        followers replaying one shipped group at a time pass
        ``scan=False`` — an O(arena) scan per group would swamp the
        O(changed-coefficients) replay — and run the full scan once at
        promotion (:meth:`FollowerEngine.finalize`).
        """
        report = RecoveryReport()
        groups, committed, tail_records, tail_bytes = self.journal.parse()
        report.discarded_records = tail_records
        report.discarded_bytes = tail_bytes
        last = self.journal.truncated_upto
        with get_tracer().span("journal.recover") as span:
            for seq in sorted(committed):
                records = groups.get(seq, [])
                for block_id, payload in records:
                    arr = np.frombuffer(payload, dtype=np.float64)
                    while self._inner.num_blocks <= block_id:
                        self._inner.allocate()
                    self._inner.write_block(block_id, arr)
                    self._summaries[block_id] = _summarise(arr)
                    report.replayed_records += 1
                    report.replayed_block_ids.append(block_id)
                report.replayed_groups += 1
                last = max(last, seq)
                self.journal.checkpoint(seq)
            report.last_committed_seq = last
            report.corrupt_blocks = self.scan() if scan else []
            span.set(
                replayed_groups=report.replayed_groups,
                replayed_records=report.replayed_records,
                discarded_records=report.discarded_records,
                corrupt_blocks=len(report.corrupt_blocks),
            )
        return report

    def scan(self) -> List[int]:
        """Checksum-verify every allocated block (uncounted peeks).
        Returns the ids that fail — empty means checksum-clean."""
        corrupt = []
        for block_id in range(self._inner.num_blocks):
            # lint: uncounted (verification scan; free by design)
            data = self._inner.peek_block(block_id)
            if block_checksum(data) != self.expected_summary(block_id).crc:
                corrupt.append(block_id)
        return corrupt
