"""Compiled per-tile gather/scatter regions for cross-product tiles.

:class:`~repro.storage.tiled.TiledStandardStore` serves a cross-product
region by locating every per-axis index, grouping the located indices by
tile with ``np.unique``, and recursing over the cross product of the
per-axis groups, building an ``np.ix_`` selector per visited tile.  All
of that work depends only on the *index geometry* — not on the values
being moved — so a region that is applied repeatedly (every chunk of a
bulk load, every batch update at a fixed granularity) can be compiled
once into flat per-tile index arrays and replayed as pure fancy-index
scatters/gathers.

A :class:`CompiledRegion` stores, per touched tile, two parallel
``intp`` arrays:

``slots``
    flat coefficient slots inside the tile's ``B^d`` block, and
``source``
    flat positions inside the caller's (row-major) value tensor.

Applying the region is then one line per tile::

    tile_store.tile(key, for_write=True)[slots] += values_flat[source]

The compiler visits tiles in exactly the order the interpreted path
does (ascending per-axis ``(band, root)`` keys, last axis fastest), so
a compiled apply produces the **same block-I/O trace** — identical
:class:`~repro.storage.iostats.IOStats` — as the store's own
``set_region`` / ``add_region`` / ``read_region``.
"""

from __future__ import annotations

from itertools import product
from typing import List, Sequence, Tuple

import numpy as np

from repro.tiling.onedim import OneDimTiling

__all__ = ["AxisTileGroups", "CompiledRegion", "group_axis_indices"]

#: Per-axis grouping of located indices: ``(tile_part, selector, slots)``
#: triples sorted by ``tile_part``; ``selector`` indexes the axis' target
#: array and ``slots`` holds the within-tile per-axis slots at those
#: positions.
AxisTileGroups = Tuple[Tuple[Tuple[int, int], np.ndarray, np.ndarray], ...]


def group_axis_indices(
    tiling: OneDimTiling, indices: np.ndarray
) -> AxisTileGroups:
    """Locate and tile-group one axis' flat transform indices.

    Raises ``ValueError`` on duplicate indices — a compiled scatter
    assumes each (tile, slot) pair is hit at most once, so fancy-index
    assignment and in-place ``+=`` are both exact.
    """
    flat = np.asarray(indices, dtype=np.int64)
    if np.unique(flat).size != flat.size:
        raise ValueError("axis index array contains duplicates")
    bands, roots, slots = tiling.locate_indices(flat)
    span = int(roots.max()) + 1 if roots.size else 1
    combined = bands * span + roots
    unique, inverse = np.unique(combined, return_inverse=True)
    groups: List[Tuple[Tuple[int, int], np.ndarray, np.ndarray]] = []
    for group_index, key in enumerate(unique):
        selector = np.nonzero(inverse == group_index)[0]
        part = (int(key) // span, int(key) % span)
        groups.append((part, selector, slots[selector].astype(np.intp)))
    return tuple(groups)


def _flat_cross(arrays: Sequence[np.ndarray], strides: Sequence[int]) -> np.ndarray:
    """Row-major flat indices of the cross product of per-axis indices."""
    acc = np.asarray(arrays[0], dtype=np.intp) * strides[0]
    for array, stride in zip(arrays[1:], strides[1:]):
        acc = acc[..., None] + np.asarray(array, dtype=np.intp) * stride
    return np.ascontiguousarray(acc.reshape(-1))


def _row_major_strides(shape: Sequence[int]) -> List[int]:
    strides = [1] * len(shape)
    for axis in range(len(shape) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * int(shape[axis + 1])
    return strides


class CompiledRegion:
    """One cross-product region compiled against one tile geometry.

    Attributes
    ----------
    tiles:
        ``(tile_key, slots, source)`` per touched tile, in the exact
        order the interpreted region path visits them.
    entries:
        Total number of coefficients the region moves.
    """

    __slots__ = ("tiles", "entries")

    def __init__(
        self,
        tiles: Sequence[Tuple[tuple, np.ndarray, np.ndarray]],
        entries: int,
    ) -> None:
        self.tiles = tuple(tiles)
        self.entries = entries

    @classmethod
    def from_axis_groups(
        cls,
        axis_groups: Sequence[AxisTileGroups],
        axis_offsets: Sequence[int],
        tensor_shape: Sequence[int],
        block_edge: int,
    ) -> "CompiledRegion":
        """Compile the cross product of per-axis tile groups.

        ``axis_offsets[a]`` shifts axis ``a``'s selector positions into
        the caller's tensor coordinates (a region covering tensor axis
        range ``[off, off + L)`` passes ``off``); ``tensor_shape`` is
        the *full* tensor the flat ``source`` indices address.
        """
        ndim = len(axis_groups)
        tensor_strides = _row_major_strides(tensor_shape)
        slot_strides = _row_major_strides((block_edge,) * ndim)
        tiles = []
        entries = 0
        for combo in product(*axis_groups):
            key = tuple(part for part, __, __ in combo)
            slots = _flat_cross([s for __, __, s in combo], slot_strides)
            source = _flat_cross(
                [sel + off for (__, sel, __), off in zip(combo, axis_offsets)],
                tensor_strides,
            )
            tiles.append((key, slots, source))
            entries += slots.size
        return cls(tiles, entries)

    # ------------------------------------------------------------------

    def scatter(
        self, tile_store, values_flat: np.ndarray, accumulate: bool
    ) -> None:
        """Push ``values_flat[source]`` into every touched tile.

        Charges exactly the block I/O the interpreted ``set_region`` /
        ``add_region`` path charges (one counted tile fetch per touched
        tile, in the same order).
        """
        fetch = tile_store.tile
        if accumulate:
            for key, slots, source in self.tiles:
                fetch(key, for_write=True)[slots] += values_flat[source]
        else:
            for key, slots, source in self.tiles:
                fetch(key, for_write=True)[slots] = values_flat[source]

    def gather(self, tile_store, out_flat: np.ndarray) -> None:
        """Fill ``out_flat[source]`` from every touched tile.

        Never-materialised tiles are skipped (they read as zero without
        I/O), mirroring the interpreted ``read_region``.
        """
        peek = tile_store.peek
        for key, slots, source in self.tiles:
            tile = peek(key)
            if tile is None:
                continue
            out_flat[source] = tile[slots]
