"""Graceful degradation: answer queries around unreadable blocks.

When a device read fails (an injected fault, or a checksum mismatch
from :mod:`repro.storage.journal`), a query does not have to fail with
it: every wavelet reconstruction is a weighted sum of coefficients, so
a missing block's contribution is bounded by ``W * ||block||_1`` where
``W`` bounds the query's per-coefficient weight magnitudes and the L1
norm comes from the block's durable summary
(:meth:`~repro.storage.journal.JournaledDevice.block_summary`).

The mechanism is a context-local collector: a query executor that opts
in wraps its evaluation in :func:`collecting_degraded`, and the tile
store — on a read failure *inside that scope only* — records a
:class:`MissingBlock` and substitutes zeros (without installing a pool
frame, so the zeros can never be mistaken for cached truth by later
non-degraded reads).  Outside the scope nothing changes: read failures
propagate exactly as before.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Optional

__all__ = [
    "DegradedCollector",
    "MissingBlock",
    "active_collector",
    "collecting_degraded",
]


@dataclass(frozen=True)
class MissingBlock:
    """One block a degraded read had to zero-fill.

    ``abs_sum`` is the L1 norm of the block's last durably-written
    content (``math.inf`` when the device keeps no summaries — the
    error is then unbounded and the result must not be trusted as an
    approximation).
    """

    key: Hashable
    block_id: int
    abs_sum: float
    error: str


@dataclass
class DegradedCollector:
    """Accumulates the blocks zero-filled during one query evaluation."""

    missing: List[MissingBlock] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.missing)

    def record(
        self, key: Hashable, block_id: int, abs_sum: float, error: str
    ) -> None:
        self.missing.append(MissingBlock(key, block_id, abs_sum, error))

    def error_bound(self, weight_bound: float) -> float:
        """Worst-case absolute error of a result whose per-coefficient
        weights are bounded by ``weight_bound`` in magnitude:
        ``weight_bound * sum(abs_sum of missing blocks)``."""
        if not self.missing:
            return 0.0
        total = 0.0
        for block in self.missing:
            if not math.isfinite(block.abs_sum):
                return math.inf
            total += block.abs_sum
        return weight_bound * total


_collector: "ContextVar[Optional[DegradedCollector]]" = ContextVar(
    "repro_degraded_collector", default=None
)


def active_collector() -> Optional[DegradedCollector]:
    """The collector of the current scope (``None`` when degraded reads
    are not enabled here — the fast-path check the tile store makes)."""
    return _collector.get()


@contextmanager
def collecting_degraded() -> Iterator[DegradedCollector]:
    """Scope within which tile-read failures degrade to zero-fills.

    Yields the :class:`DegradedCollector` that will hold whatever went
    missing; inspect ``collector.degraded`` / ``error_bound`` after."""
    collector = DegradedCollector()
    token = _collector.set(collector)
    try:
        yield collector
    finally:
        _collector.reset(token)
