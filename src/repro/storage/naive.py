"""Naive coefficient blocking — the ablation baseline for tiling.

Instead of the paper's wavelet-tree subtree tiles, coefficients are
packed into blocks by plain index geometry: block key is
``index // B`` per axis.  Coefficients that are far apart in the tree
(and never co-accessed) share blocks, while a root path crosses many
blocks — exactly the utilisation problem Section 3's tiling fixes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.iostats import IOStats
from repro.storage.tile_store import TileStore
from repro.util.bits import ilog2
from repro.util.validation import require_power_of_two_shape

__all__ = ["NaiveBlockedStandardStore"]


class NaiveBlockedStandardStore:
    """Standard-form transform in row-major index-space blocks.

    Implements the same region interface as
    :class:`~repro.storage.tiled.TiledStandardStore` so queries and
    maintenance algorithms run unchanged against it.
    """

    def __init__(
        self,
        shape: Sequence[int],
        block_edge: int,
        pool_capacity: int = 8,
        stats: Optional[IOStats] = None,
    ) -> None:
        self._shape = require_power_of_two_shape(shape)
        self._edge = block_edge
        ilog2(block_edge)
        for axis, extent in enumerate(self._shape):
            if block_edge > extent:
                raise ValueError(
                    f"block_edge {block_edge} exceeds extent {extent} "
                    f"of axis {axis}"
                )
        self._store = TileStore(
            block_slots=block_edge ** len(self._shape),
            pool_capacity=pool_capacity,
            stats=stats,
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def stats(self) -> IOStats:
        return self._store.stats

    @property
    def tile_store(self) -> TileStore:
        return self._store

    def flush(self) -> None:
        self._store.flush()

    def drop_cache(self) -> None:
        self._store.drop_cache()

    def _axis_groups(self, per_axis: Sequence[np.ndarray]):
        if len(per_axis) != self.ndim:
            raise ValueError(
                f"need {self.ndim} index arrays, got {len(per_axis)}"
            )
        located = []
        for axis, indices in enumerate(per_axis):
            flat = np.asarray(indices, dtype=np.int64)
            if np.unique(flat).size != flat.size:
                raise ValueError(
                    f"axis {axis} index array contains duplicates"
                )
            blocks = flat // self._edge
            slots = flat % self._edge
            unique, inverse = np.unique(blocks, return_inverse=True)
            groups = [
                (int(block), np.nonzero(inverse == g)[0])
                for g, block in enumerate(unique)
            ]
            located.append((slots, groups))
        return located

    def _visit(self, per_axis, callback) -> None:
        located = self._axis_groups(per_axis)

        def recurse(axis: int, parts: List[int], selectors: list) -> None:
            if axis == self.ndim:
                callback(tuple(parts), selectors, located)
                return
            for part, selector in located[axis][1]:
                parts.append(part)
                selectors.append(selector)
                recurse(axis + 1, parts, selectors)
                parts.pop()
                selectors.pop()

        recurse(0, [], [])

    def _update_region(self, per_axis, values, accumulate: bool) -> None:
        values = np.asarray(values, dtype=np.float64)
        edge_shape = (self._edge,) * self.ndim

        def callback(key, selectors, located):
            tile = self._store.tile(key, for_write=True)
            view = tile.reshape(edge_shape)
            slot_ix = np.ix_(
                *[located[a][0][selectors[a]] for a in range(self.ndim)]
            )
            block = values[np.ix_(*selectors)]
            if accumulate:
                view[slot_ix] += block
            else:
                view[slot_ix] = block

        self._visit(per_axis, callback)

    def set_region(self, per_axis, values) -> None:
        self._update_region(per_axis, values, accumulate=False)

    def add_region(self, per_axis, values) -> None:
        self._update_region(per_axis, values, accumulate=True)

    def read_region(self, per_axis) -> np.ndarray:
        out = np.zeros(
            tuple(np.asarray(axis).size for axis in per_axis),
            dtype=np.float64,
        )
        edge_shape = (self._edge,) * self.ndim

        def callback(key, selectors, located):
            tile = self._store.peek(key)
            if tile is None:
                return
            view = tile.reshape(edge_shape)
            slot_ix = np.ix_(
                *[located[a][0][selectors[a]] for a in range(self.ndim)]
            )
            out[np.ix_(*selectors)] = view[slot_ix]

        self._visit(per_axis, callback)
        return out

    def read_point(self, position: Sequence[int]) -> float:
        key = tuple(int(i) // self._edge for i in position)
        slot = 0
        for coordinate in position:
            slot = slot * self._edge + int(coordinate) % self._edge
        return self._store.read_slot(key, slot)

    def write_point(self, position: Sequence[int], value: float) -> None:
        key = tuple(int(i) // self._edge for i in position)
        slot = 0
        for coordinate in position:
            slot = slot * self._edge + int(coordinate) % self._edge
        self._store.write_slot(key, slot, value)

    def to_array(self) -> np.ndarray:
        """Uncounted dense snapshot (verification only)."""
        saved = self.stats.snapshot()
        dense = np.zeros(self._shape, dtype=np.float64)
        edge_shape = (self._edge,) * self.ndim
        for key in list(self._store.keys()):
            tile = self._store.peek(key)
            selector = tuple(
                slice(block * self._edge, (block + 1) * self._edge)
                for block in key
            )
            dense[selector] = tile.reshape(edge_shape)
        self.stats.block_reads = saved.block_reads
        self.stats.block_writes = saved.block_writes
        self.stats.cache_hits = saved.cache_hits
        self.stats.cache_misses = saved.cache_misses
        return dense
