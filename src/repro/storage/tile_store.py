"""Physical tile storage: tile key -> disk block of coefficient slots.

A :class:`TileStore` maps hashable tile keys (produced by the tiling
strategies in :mod:`repro.tiling`) to blocks of the simulated device,
caching through a write-back :class:`~repro.storage.buffer_pool.BufferPool`.
Coefficients default to zero: a tile that was never written reads as a
zero block without costing any I/O, matching the sparse initial state
of a transform under construction.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional, Tuple

import numpy as np

from repro.obs.tracer import get_tracer
from repro.storage.block_device import BlockDevice
from repro.storage.buffer_pool import BufferPool
from repro.storage.degrade import active_collector
from repro.storage.iostats import IOStats

__all__ = ["TileStore"]


class TileStore:
    """Keyed block storage with lazy allocation and write-back caching.

    Parameters
    ----------
    block_slots:
        Coefficient slots per tile (``B^d`` under the paper's tiling).
    pool_capacity:
        Buffer-pool size in blocks.  The paper's maintenance scenarios
        assume scarce memory, so default to a small pool; experiments
        size it explicitly from the scenario's memory budget.
    stats:
        Shared I/O counter; a fresh one is created when omitted.
    device:
        An existing device to store tiles on instead of creating a
        private :class:`BlockDevice`.  Its ``block_slots`` must equal
        ``block_slots``.  The multi-tenant serving layer passes one
        shared (journaled, deadline-guarded) device to every tenant's
        store: block ids stay globally unique because all allocation
        goes through the one device, so the tenants can also share one
        buffer pool.  ``stats`` is ignored when ``device`` is given —
        the device already carries its counter.
    """

    def __init__(
        self,
        block_slots: int,
        pool_capacity: int = 8,
        stats: Optional[IOStats] = None,
        device=None,
    ) -> None:
        if device is not None:
            if device.block_slots != block_slots:
                raise ValueError(
                    f"shared device has {device.block_slots} slots per "
                    f"block but this store needs {block_slots}"
                )
            self._device = device
        else:
            self._device = BlockDevice(block_slots, stats=stats)
        self._pool = BufferPool(self._device, pool_capacity)
        self._directory: Dict[Hashable, int] = {}

    @property
    def stats(self) -> IOStats:
        return self._device.stats

    @property
    def device(self) -> BlockDevice:
        return self._device

    @property
    def pool(self) -> BufferPool:
        return self._pool

    def wrap_device(self, factory) -> None:
        """Interpose a device wrapper (fault injection, journaling).

        ``factory`` receives the current device and returns the wrapper
        to use in its place — e.g. ``store.tile_store.wrap_device(
        JournaledDevice)`` or ``lambda d: FaultyBlockDevice(d, seed=7)``.
        The current pool is flushed and rebuilt over the wrapper (same
        capacity), so no dirty data is lost and every subsequent I/O
        goes through the wrapper.  Call *before* handing the store to a
        :class:`~repro.service.engine.QueryEngine` — the engine captures
        the device at construction.
        """
        self._pool.drop_all()
        capacity = getattr(self._pool, "capacity", 8)
        self._device = factory(self._device)
        self._pool = BufferPool(self._device, capacity)

    def set_pool(self, pool) -> None:
        """Install a replacement buffer pool over the same device.

        The current pool is flushed and dropped first, so no dirty data
        is lost; the replacement (e.g. a
        :class:`~repro.service.pool.ShardedBufferPool`) must present the
        :class:`BufferPool` interface and wrap this store's device.
        """
        self._pool.drop_all()
        self._pool = pool

    @property
    def block_slots(self) -> int:
        return self._device.block_slots

    @property
    def num_tiles(self) -> int:
        """Number of tiles that have ever been materialised."""
        return len(self._directory)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._directory

    def keys(self) -> Iterator[Hashable]:
        return iter(self._directory)

    def tile(self, key: Hashable, for_write: bool = False) -> np.ndarray:
        """The slot array of tile ``key`` (allocated lazily).

        The returned array is the pool's resident copy; with
        ``for_write=True`` mutations will be persisted on eviction or
        flush.  Fetching an existing non-resident tile costs one block
        read; creating a fresh tile costs none (its zero contents are
        known).
        """
        block_id = self._directory.get(key)
        if block_id is None:
            block_id = self._device.allocate()
            self._directory[key] = block_id
            data = self._pool.create(block_id)
            return data
        return self._pool.get(block_id, for_write=for_write)

    def tile_pinned(self, key: Hashable) -> "Tuple[int, np.ndarray]":
        """Fetch-or-create tile ``key`` with its pool frame pinned.

        Returns ``(block_id, data)``; the caller must
        ``pool.unpin(block_id)`` when done mutating.  The pin is taken
        before any eviction pass can see the frame, so the returned
        array stays resident for the pin's duration even under
        concurrent pool traffic.  Directory access itself is *not*
        locked here — concurrent callers (the parallel bulk loader)
        serialise :meth:`tile_pinned` calls behind their own lock.
        """
        block_id = self._directory.get(key)
        if block_id is None:
            block_id = self._device.allocate()
            self._directory[key] = block_id
            return block_id, self._pool.create(block_id, pin=True)
        fetch_and_pin = getattr(self._pool, "fetch_and_pin", None)
        if fetch_and_pin is not None:
            return block_id, fetch_and_pin(block_id)
        return block_id, self._pool.get(block_id, pin=True)

    def block_of(self, key: Hashable) -> Optional[int]:
        """Device block id of tile ``key`` (``None`` if never
        materialised).  Uncounted — used by the query planner to pin
        prefetched blocks."""
        return self._directory.get(key)

    def peek(self, key: Hashable) -> Optional[np.ndarray]:
        """Like :meth:`tile` but returns ``None`` instead of allocating
        when the tile was never materialised.

        Inside a :func:`repro.storage.degrade.collecting_degraded`
        scope a read failure (injected fault, checksum mismatch) is
        recorded with the block's durable L1 summary and a *fresh* zero
        array is returned; no pool frame is installed, so the
        substituted zeros are never cached as truth.  Outside such a
        scope failures propagate unchanged.
        """
        block_id = self._directory.get(key)
        if block_id is None:
            return None
        collector = active_collector()
        if collector is None:
            return self._pool.get(block_id)
        try:
            return self._pool.get(block_id)
        except IOError as exc:
            summary = getattr(self._device, "block_summary", None)
            if summary is not None:
                abs_sum = summary(block_id).abs_sum
            else:
                abs_sum = float("inf")
            collector.record(key, block_id, abs_sum, str(exc))
            return np.zeros(self._device.block_slots, dtype=np.float64)

    def read_slot(self, key: Hashable, slot: int) -> float:
        """Read one coefficient (zero if the tile does not exist)."""
        data = self.peek(key)
        if data is None:
            return 0.0
        return float(data[slot])

    def write_slot(self, key: Hashable, slot: int, value: float) -> None:
        """Write one coefficient, materialising the tile if needed."""
        data = self.tile(key, for_write=True)
        data[slot] = value

    def add_to_slot(self, key: Hashable, slot: int, delta: float) -> None:
        """Accumulate into one coefficient (read-modify-write)."""
        data = self.tile(key, for_write=True)
        data[slot] += delta

    def directory(self) -> Dict[Hashable, int]:
        """Uncounted copy of the tile-key -> block-id mapping (used by
        persistence)."""
        return dict(self._directory)

    def restore_directory(self, directory: Dict[Hashable, int]) -> None:
        """Uncounted bulk restore (inverse of :meth:`directory`)."""
        self._directory = dict(directory)

    def flush(self) -> None:
        """Write back all dirty resident tiles."""
        with get_tracer().span("tile_store.flush"):
            self._pool.flush()

    def drop_cache(self) -> None:
        """Flush and empty the pool (cold-cache boundary for benchmarks)."""
        with get_tracer().span("tile_store.drop_cache"):
            self._pool.drop_all()
