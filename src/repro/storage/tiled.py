"""Tiled (block-granularity) coefficient stores.

These stores present the same region/key interfaces as their dense
counterparts in :mod:`repro.storage.dense`, but persist coefficients in
tile blocks through a :class:`~repro.storage.tile_store.TileStore`, so
that the I/O counters measure *disk blocks* under the paper's optimal
allocation strategy (Section 3).  All region operations group the
touched coefficients by tile and move whole blocks, exactly as the
paper's tiled SHIFT-SPLIT does (Section 4.2).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.iostats import IOStats
from repro.storage.tile_store import TileStore
from repro.tiling.nonstandard import NonStandardTiling
from repro.tiling.standard import StandardTiling
from repro.wavelet.keys import NonStandardKey

__all__ = ["TiledStandardStore", "TiledNonStandardStore"]

#: Debug env var forcing duplicate-index validation on for every tiled
#: region call (see :class:`TiledStandardStore`'s ``validate_regions``).
VALIDATE_ENV = "REPRO_VALIDATE_REGIONS"


def _env_validate_default() -> bool:
    return os.environ.get(VALIDATE_ENV, "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


def _group_by_tile(
    bands: np.ndarray, roots: np.ndarray
) -> List[Tuple[Tuple[int, int], np.ndarray]]:
    """Group positions of one axis by their (band, root) tile part.

    Returns ``[(tile_part, selector), ...]`` where ``selector`` indexes
    the original per-axis arrays.
    """
    span = int(roots.max()) + 1 if roots.size else 1
    combined = bands * span + roots
    unique, inverse = np.unique(combined, return_inverse=True)
    groups = []
    for group_index, key in enumerate(unique):
        selector = np.nonzero(inverse == group_index)[0]
        groups.append(((int(key) // span, int(key) % span), selector))
    return groups


class TiledStandardStore:
    """Standard-form transform stored in cross-product tiles.

    Mirrors :class:`~repro.storage.dense.DenseStandardStore`'s interface
    (``set_region`` / ``add_region`` / ``read_region`` / point ops) so
    the maintenance algorithms are store-agnostic.
    """

    def __init__(
        self,
        shape: Sequence[int],
        block_edge: int,
        pool_capacity: int = 8,
        stats: Optional[IOStats] = None,
        validate_regions: Optional[bool] = None,
        device=None,
    ) -> None:
        self._tiling = StandardTiling(shape, block_edge)
        self._edge = block_edge
        self._store = TileStore(
            block_slots=self._tiling.block_slots,
            pool_capacity=pool_capacity,
            stats=stats,
            device=device,
        )
        # Duplicate-index validation costs an np.unique per axis on
        # every region call; plan-driven traffic is duplicate-free by
        # construction, so the check is opt-in (constructor flag, or
        # the REPRO_VALIDATE_REGIONS env var for debugging).
        self._validate_regions = (
            _env_validate_default()
            if validate_regions is None
            else bool(validate_regions)
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._tiling.shape

    @property
    def ndim(self) -> int:
        return self._tiling.ndim

    @property
    def tiling(self) -> StandardTiling:
        return self._tiling

    @property
    def tile_store(self) -> TileStore:
        return self._store

    @property
    def stats(self) -> IOStats:
        return self._store.stats

    def flush(self) -> None:
        self._store.flush()

    def drop_cache(self) -> None:
        self._store.drop_cache()

    # ------------------------------------------------------------------

    def _axis_groups(
        self,
        per_axis: Sequence[np.ndarray],
        validate: Optional[bool] = None,
    ):
        """Locate and tile-group every axis' index array.

        ``validate`` overrides the store's duplicate-index check for
        this call (``None`` = store default).  Duplicated positions
        would make fancy-index accumulation silently drop updates, so
        turn the check on when handing the store untrusted index sets.
        """
        if len(per_axis) != self.ndim:
            raise ValueError(
                f"need {self.ndim} index arrays, got {len(per_axis)}"
            )
        check = self._validate_regions if validate is None else validate
        located = []
        for axis, indices in enumerate(per_axis):
            flat = np.asarray(indices, dtype=np.int64)
            if check and np.unique(flat).size != flat.size:
                raise ValueError(
                    f"axis {axis} index array contains duplicates"
                )
            bands, roots, slots = self._tiling.locate_axis_indices(axis, flat)
            located.append((slots, _group_by_tile(bands, roots)))
        return located

    def _update_region(
        self,
        per_axis: Sequence[np.ndarray],
        values: np.ndarray,
        accumulate: bool,
        validate: Optional[bool] = None,
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        located = self._axis_groups(per_axis, validate=validate)
        edge_shape = (self._edge,) * self.ndim

        def recurse(axis: int, tile_parts: list, selectors: list) -> None:
            if axis == self.ndim:
                key = tuple(tile_parts)
                tile = self._store.tile(key, for_write=True)
                view = tile.reshape(edge_shape)
                slot_ix = np.ix_(
                    *[
                        located[a][0][selectors[a]]
                        for a in range(self.ndim)
                    ]
                )
                sub_values = values[np.ix_(*selectors)]
                if accumulate:
                    view[slot_ix] += sub_values
                else:
                    view[slot_ix] = sub_values
                return
            for part, selector in located[axis][1]:
                tile_parts.append(part)
                selectors.append(selector)
                recurse(axis + 1, tile_parts, selectors)
                tile_parts.pop()
                selectors.pop()

        recurse(0, [], [])

    def set_region(
        self,
        per_axis: Sequence[np.ndarray],
        values: np.ndarray,
        validate: Optional[bool] = None,
    ) -> None:
        """Overwrite the cross-product region, tile by tile."""
        self._update_region(per_axis, values, accumulate=False, validate=validate)

    def add_region(
        self,
        per_axis: Sequence[np.ndarray],
        values: np.ndarray,
        validate: Optional[bool] = None,
    ) -> None:
        """Accumulate into the cross-product region, tile by tile."""
        self._update_region(per_axis, values, accumulate=True, validate=validate)

    def read_region(
        self,
        per_axis: Sequence[np.ndarray],
        validate: Optional[bool] = None,
    ) -> np.ndarray:
        """Read the cross-product region, tile by tile."""
        located = self._axis_groups(per_axis, validate=validate)
        out_shape = tuple(np.asarray(axis).size for axis in per_axis)
        out = np.zeros(out_shape, dtype=np.float64)
        edge_shape = (self._edge,) * self.ndim

        def recurse(axis: int, tile_parts: list, selectors: list) -> None:
            if axis == self.ndim:
                key = tuple(tile_parts)
                tile = self._store.peek(key)
                if tile is None:
                    return  # never-written tiles read as zero, no I/O
                view = tile.reshape(edge_shape)
                slot_ix = np.ix_(
                    *[
                        located[a][0][selectors[a]]
                        for a in range(self.ndim)
                    ]
                )
                out[np.ix_(*selectors)] = view[slot_ix]
                return
            for part, selector in located[axis][1]:
                tile_parts.append(part)
                selectors.append(selector)
                recurse(axis + 1, tile_parts, selectors)
                tile_parts.pop()
                selectors.pop()

        recurse(0, [], [])
        return out

    # ------------------------------------------------------------------

    def read_point(self, position: Sequence[int]) -> float:
        key, slot = self._tiling.locate(position)
        return self._store.read_slot(key, slot)

    def write_point(self, position: Sequence[int], value: float) -> None:
        key, slot = self._tiling.locate(position)
        self._store.write_slot(key, slot, value)

    def add_point(self, position: Sequence[int], delta: float) -> None:
        key, slot = self._tiling.locate(position)
        self._store.add_to_slot(key, slot, delta)

    def to_array(self) -> np.ndarray:
        """Uncounted dense snapshot (verification only).

        Decodes every materialised tile.  Per-axis slot 0 is a valid
        transform coefficient only for the per-axis *top* tile (where
        it holds the axis' overall-smooth direction, flat index 0);
        slot 0 of other tiles is the redundant scaling slot and is
        skipped.
        """
        saved = self.stats.snapshot()  # snapshots are free of I/O charges
        dense = np.zeros(self.shape, dtype=np.float64)
        edge_shape = (self._edge,) * self.ndim
        for key in list(self._store.keys()):
            tile = self._store.peek(key)
            view = tile.reshape(edge_shape)
            axis_slots: List[np.ndarray] = []
            axis_flats: List[np.ndarray] = []
            usable = True
            for axis, part in enumerate(key):
                tiling = self._tiling.dim(axis)
                slots = []
                flats = []
                band, root = part
                if band == tiling.num_bands - 1 and root == 0:
                    slots.append(0)
                    flats.append(0)
                for level, position, slot in tiling.details_of_tile(part):
                    slots.append(slot)
                    flats.append(
                        (1 << (tiling.levels - level)) + position
                    )
                if not slots:
                    usable = False
                    break
                axis_slots.append(np.asarray(slots, dtype=np.intp))
                axis_flats.append(np.asarray(flats, dtype=np.intp))
            if usable:
                dense[np.ix_(*axis_flats)] = view[np.ix_(*axis_slots)]
        self.stats.block_reads = saved.block_reads
        self.stats.block_writes = saved.block_writes
        self.stats.cache_hits = saved.cache_hits
        self.stats.cache_misses = saved.cache_misses
        return dense


class TiledNonStandardStore:
    """Non-standard transform stored in quadtree-subtree tiles.

    Mirrors :class:`~repro.storage.dense.DenseNonStandardStore`'s
    interface.
    """

    def __init__(
        self,
        size: int,
        ndim: int,
        block_edge: int,
        pool_capacity: int = 8,
        stats: Optional[IOStats] = None,
    ) -> None:
        self._tiling = NonStandardTiling(size, ndim, block_edge)
        self._store = TileStore(
            block_slots=self._tiling.block_slots,
            pool_capacity=pool_capacity,
            stats=stats,
        )

    @property
    def size(self) -> int:
        return self._tiling.size

    @property
    def ndim(self) -> int:
        return self._tiling.ndim

    @property
    def tiling(self) -> NonStandardTiling:
        return self._tiling

    @property
    def tile_store(self) -> TileStore:
        return self._store

    @property
    def stats(self) -> IOStats:
        return self._store.stats

    def flush(self) -> None:
        self._store.flush()

    def drop_cache(self) -> None:
        self._store.drop_cache()

    # ------------------------------------------------------------------

    def _region_tiles(
        self,
        level: int,
        type_mask: int,
        node_start: Sequence[int],
        node_counts: Sequence[int],
    ):
        """Iterate (tile key, flat slot array, region selector) for a
        contiguous node region of one subband."""
        band = self._tiling.band_of_level(level)
        depth = self._tiling.band_root_level(band) - level
        side = 1 << depth
        branching = self._tiling.branching
        base = ((branching ** depth) - 1) // (branching - 1)
        nodes = [
            np.arange(int(start), int(start) + int(count), dtype=np.int64)
            for start, count in zip(node_start, node_counts)
        ]
        roots = [axis_nodes >> depth for axis_nodes in nodes]
        groups_per_axis = []
        for axis_roots in roots:
            unique, inverse = np.unique(axis_roots, return_inverse=True)
            groups_per_axis.append(
                [
                    (int(root), np.nonzero(inverse == g)[0])
                    for g, root in enumerate(unique)
                ]
            )

        def recurse(axis: int, chosen_roots: list, selectors: list):
            if axis == self._tiling.ndim:
                key = (band, tuple(chosen_roots))
                # Flat within-tile slot for every node in this sub-block.
                ordinal = np.zeros(
                    tuple(sel.size for sel in selectors), dtype=np.int64
                )
                for a in range(self._tiling.ndim):
                    local = (
                        nodes[a][selectors[a]]
                        - (chosen_roots[a] << depth)
                    )
                    shape = [1] * self._tiling.ndim
                    shape[a] = local.size
                    ordinal = ordinal * side + local.reshape(shape)
                slots = (
                    1
                    + (base + ordinal) * (branching - 1)
                    + (type_mask - 1)
                )
                yield key, slots, selectors
                return
            for root, selector in groups_per_axis[axis]:
                chosen_roots.append(root)
                selectors.append(selector)
                yield from recurse(axis + 1, chosen_roots, selectors)
                chosen_roots.pop()
                selectors.pop()

        yield from recurse(0, [], [])

    def set_details(
        self,
        level: int,
        type_mask: int,
        node_start: Sequence[int],
        values: np.ndarray,
    ) -> None:
        """Overwrite a contiguous node region of one subband."""
        values = np.asarray(values, dtype=np.float64)
        for key, slots, selectors in self._region_tiles(
            level, type_mask, node_start, values.shape
        ):
            tile = self._store.tile(key, for_write=True)
            tile[slots.ravel()] = values[np.ix_(*selectors)].ravel()

    def read_details(
        self,
        level: int,
        type_mask: int,
        node_start: Sequence[int],
        node_counts: Sequence[int],
    ) -> np.ndarray:
        """Read a contiguous node region of one subband."""
        out = np.zeros(tuple(int(c) for c in node_counts), dtype=np.float64)
        for key, slots, selectors in self._region_tiles(
            level, type_mask, node_start, node_counts
        ):
            tile = self._store.peek(key)
            if tile is None:
                continue
            out[np.ix_(*selectors)] = tile[slots.ravel()].reshape(slots.shape)
        return out

    def add_detail(self, key: NonStandardKey, delta: float) -> None:
        tile, slot = self._tiling.locate_key(key)
        self._store.add_to_slot(tile, slot, delta)

    def set_detail(self, key: NonStandardKey, value: float) -> None:
        tile, slot = self._tiling.locate_key(key)
        self._store.write_slot(tile, slot, value)

    def read_detail(self, key: NonStandardKey) -> float:
        tile, slot = self._tiling.locate_key(key)
        return self._store.read_slot(tile, slot)

    def read_scaling(self) -> float:
        tile, slot = self._tiling.locate_scaling()
        return self._store.read_slot(tile, slot)

    def add_scaling(self, delta: float) -> None:
        tile, slot = self._tiling.locate_scaling()
        self._store.add_to_slot(tile, slot, delta)

    def set_scaling(self, value: float) -> None:
        tile, slot = self._tiling.locate_scaling()
        self._store.write_slot(tile, slot, value)

    def to_array(self) -> np.ndarray:
        """Uncounted dense Mallat-layout snapshot (verification only)."""
        saved = self.stats.snapshot()
        dense = np.zeros((self.size,) * self.ndim, dtype=np.float64)
        for key in list(self._store.keys()):
            tile = self._store.peek(key)
            for detail_key in self._tiling.keys_of_tile(key):
                __, slot = self._tiling.locate_key(detail_key)
                dense[detail_key.position(self.size)] = tile[slot]
        top_tile, top_slot = self._tiling.locate_scaling()
        stored = self._store.peek(top_tile)
        if stored is not None:
            dense[(0,) * self.ndim] = stored[top_slot]
        self.stats.block_reads = saved.block_reads
        self.stats.block_writes = saved.block_writes
        self.stats.cache_hits = saved.cache_hits
        self.stats.cache_misses = saved.cache_misses
        return dense
