"""LRU buffer pool over the simulated block device.

Database-style write-back caching: a block is read from the device at
most once while resident, dirty blocks are written back on eviction or
flush.  The pool is what turns "coefficients touched" into "blocks
transferred" — the quantity the paper's tiling strategy optimises.

Frames can be *pinned* (:meth:`BufferPool.pin`): a pinned frame is
never chosen as an eviction victim, so a caller can hold a reference to
a block's array across other pool traffic — the batched query planner
pins every prefetched block for the duration of a batch.  If every
frame is pinned the pool temporarily overflows its capacity rather
than failing; it shrinks back as pins are released.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.obs.heat import touch_read as _heat_read, touch_write as _heat_write
from repro.obs.tracer import charge as _trace_charge, get_tracer
from repro.storage.block_device import BlockDevice

__all__ = ["BufferPool"]


class _Frame:
    """One resident block: its data, dirty flag and pin count."""

    __slots__ = ("data", "dirty", "pins")

    def __init__(self, data: np.ndarray) -> None:
        self.data = data
        self.dirty = False
        self.pins = 0


class BufferPool:
    """Write-back LRU cache of device blocks.

    Parameters
    ----------
    device:
        The backing :class:`BlockDevice`.
    capacity:
        Maximum resident blocks; must be >= 1.  The paper's experiments
        model a memory-constrained transformation, so callers size this
        to the scenario's memory budget.

    Besides the shared :class:`~repro.storage.iostats.IOStats` counters
    the pool keeps local ``hits`` / ``misses`` / ``evictions`` tallies,
    so a sharded arrangement of pools can report per-shard rates while
    all shards charge the same device.
    """

    def __init__(self, device: BlockDevice, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._device = device
        self._capacity = capacity
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def device(self) -> BlockDevice:
        return self._device

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def resident(self) -> int:
        """Number of blocks currently cached."""
        return len(self._frames)

    @property
    def pinned(self) -> int:
        """Number of resident blocks with a nonzero pin count."""
        return sum(1 for frame in self._frames.values() if frame.pins)

    @property
    def dirty(self) -> int:
        """Number of resident blocks modified since their last
        write-back (what a crash right now would lose)."""
        return sum(1 for frame in self._frames.values() if frame.dirty)

    @property
    def hit_rate(self) -> float:
        """Local hit fraction (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    # stat hooks — overridden by sharded arrangements that must
    # serialise updates to the shared IOStats object
    # ------------------------------------------------------------------

    def _count_hit(self) -> None:
        self.hits += 1
        self._device.stats.cache_hits += 1
        _trace_charge("cache_hits")

    def _count_miss(self) -> None:
        self.misses += 1
        self._device.stats.cache_misses += 1
        _trace_charge("cache_misses")

    # ------------------------------------------------------------------

    def get(
        self, block_id: int, for_write: bool = False, pin: bool = False
    ) -> np.ndarray:
        """Return the cached array for ``block_id`` (faulting it in).

        The returned array is the pool's resident copy: mutations are
        visible to later ``get`` calls.  Callers that mutate must pass
        ``for_write=True`` (or call :meth:`mark_dirty`) so the block is
        written back on eviction.  A hit — with or without
        ``for_write`` — refreshes the block's LRU position.

        ``pin=True`` pins the frame *before* any eviction pass runs, so
        a faulted-in block cannot be chosen as its own insertion's
        victim even when every other frame is pinned.
        """
        frame = self._frames.get(block_id)
        if frame is not None:
            self._frames.move_to_end(block_id)
            self._count_hit()
            if pin:
                frame.pins += 1
        else:
            self._count_miss()
            with get_tracer().span("pool.fetch", block=block_id):
                data = self._device.read_block(block_id)
            frame = _Frame(data)
            if pin:
                frame.pins += 1
            self._frames[block_id] = frame
            self._evict_if_needed(protect=block_id)
        # Heat accounting mirrors the cache counters charged above: a
        # logical tile read per lookup (hit or miss), a logical write
        # when the caller declares mutation.  Write-backs on eviction
        # or flush are not re-attributed — the dirtying query paid.
        _heat_read(block_id)
        if for_write:
            frame.dirty = True
            _heat_write(block_id)
        return frame.data

    def create(self, block_id: int, pin: bool = False) -> np.ndarray:
        """Install a fresh zero-filled frame for a newly allocated block.

        No device read is charged — the block has never been written,
        so its (zero) contents are known without touching the disk.
        The frame starts dirty and will be written back on eviction.
        ``pin=True`` pins the frame before it can be seen by any
        eviction pass, so create-and-pin is atomic (concurrent bulk
        loaders rely on this to mutate a fresh tile safely).
        """
        if block_id in self._frames:
            raise KeyError(f"block {block_id} is already resident")
        frame = _Frame(np.zeros(self._device.block_slots, dtype=np.float64))
        frame.dirty = True
        if pin:
            frame.pins += 1
        self._frames[block_id] = frame
        self._evict_if_needed(protect=block_id)
        _heat_write(block_id)
        return frame.data

    def mark_dirty(self, block_id: int) -> None:
        """Flag a resident block as modified."""
        frame = self._frames.get(block_id)
        if frame is None:
            raise KeyError(f"block {block_id} is not resident")
        frame.dirty = True
        _heat_write(block_id)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------

    def pin(self, block_id: int) -> None:
        """Exempt a resident block from eviction (counted; re-entrant)."""
        frame = self._frames.get(block_id)
        if frame is None:
            raise KeyError(f"block {block_id} is not resident")
        frame.pins += 1

    def unpin(self, block_id: int) -> None:
        """Release one pin; the block becomes evictable at zero pins."""
        frame = self._frames.get(block_id)
        if frame is None:
            raise KeyError(f"block {block_id} is not resident")
        if frame.pins <= 0:
            raise ValueError(f"block {block_id} is not pinned")
        frame.pins -= 1
        if frame.pins == 0:
            self._evict_if_needed()

    def _evict_if_needed(self, protect: Optional[int] = None) -> None:
        """Evict LRU-first until within capacity, skipping pinned frames
        and the just-inserted ``protect`` frame (its caller has not even
        seen the data yet; evicting it pre-``for_write`` would silently
        drop the dirty flag).  When nothing is evictable the pool
        overflows temporarily and shrinks as pins release."""
        while len(self._frames) > self._capacity:
            victim_id = None
            for block_id, frame in self._frames.items():
                if frame.pins == 0 and block_id != protect:
                    victim_id = block_id
                    break
            if victim_id is None:
                return
            frame = self._frames.pop(victim_id)
            self.evictions += 1
            if frame.dirty:
                with get_tracer().span("pool.evict", block=victim_id):
                    try:
                        self._device.write_block(victim_id, frame.data)
                    except IOError:
                        # Write-back failed: the frame is the only copy
                        # of the dirty data.  Reinstate it (still dirty,
                        # at the LRU end so it is not immediately
                        # re-chosen) and surface the failure.
                        self._frames[victim_id] = frame
                        self._frames.move_to_end(victim_id)
                        self.evictions -= 1
                        raise

    def flush(self, block_id: Optional[int] = None) -> None:
        """Write back dirty blocks (one, or all when ``block_id is None``).

        Blocks stay resident; only the dirty flags are cleared.
        Flushing a non-resident block is a no-op (nothing cached means
        nothing unwritten).
        """
        if block_id is not None:
            frame = self._frames.get(block_id)
            if frame is not None and frame.dirty:
                self._device.write_block(block_id, frame.data)
                frame.dirty = False
            return
        with get_tracer().span("pool.flush") as span:
            dirty = [
                (resident_id, frame)
                for resident_id, frame in self._frames.items()
                if frame.dirty
            ]
            write_batch = getattr(self._device, "write_batch", None)
            if write_batch is not None and dirty:
                # Journaled devices flush as one atomic group commit:
                # either every dirty block of this flush becomes durable
                # or none does.  Dirty flags clear only after the group
                # succeeds.  Under the sharded pool this resolves to the
                # synchronized device's locked wrapper.
                # may-acquire: _SynchronizedDevice._lock, TraceStore._lock, Tracer._orphan_lock
                write_batch([(rid, frame.data) for rid, frame in dirty])
                for __, frame in dirty:
                    frame.dirty = False
            else:
                for resident_id, frame in dirty:
                    self._device.write_block(resident_id, frame.data)
                    frame.dirty = False
            span.set(blocks=len(dirty))

    def invalidate(self, block_ids) -> list:
        """Discard resident frames for ``block_ids`` WITHOUT writing
        them back — the device already holds newer bytes (replication
        replay wrote beneath the pool).  Pinned frames cannot be
        discarded (a caller holds the array); their ids are returned so
        the caller can retry once the pins drain.  Non-resident ids are
        no-ops."""
        leftover = []
        for block_id in block_ids:
            frame = self._frames.get(block_id)
            if frame is None:
                continue
            if frame.pins > 0:
                leftover.append(block_id)
                continue
            del self._frames[block_id]
        return leftover

    def drop_all(self) -> None:
        """Flush everything and empty the pool (e.g. between experiments).

        Outstanding pins are discarded with the frames — callers must
        not drop the pool mid-batch.
        """
        self.flush()
        self._frames.clear()
