"""LRU buffer pool over the simulated block device.

Database-style write-back caching: a block is read from the device at
most once while resident, dirty blocks are written back on eviction or
flush.  The pool is what turns "coefficients touched" into "blocks
transferred" — the quantity the paper's tiling strategy optimises.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.storage.block_device import BlockDevice

__all__ = ["BufferPool"]


class _Frame:
    """One resident block: its data and a dirty flag."""

    __slots__ = ("data", "dirty")

    def __init__(self, data: np.ndarray) -> None:
        self.data = data
        self.dirty = False


class BufferPool:
    """Write-back LRU cache of device blocks.

    Parameters
    ----------
    device:
        The backing :class:`BlockDevice`.
    capacity:
        Maximum resident blocks; must be >= 1.  The paper's experiments
        model a memory-constrained transformation, so callers size this
        to the scenario's memory budget.
    """

    def __init__(self, device: BlockDevice, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._device = device
        self._capacity = capacity
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()

    @property
    def device(self) -> BlockDevice:
        return self._device

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def resident(self) -> int:
        """Number of blocks currently cached."""
        return len(self._frames)

    def get(self, block_id: int, for_write: bool = False) -> np.ndarray:
        """Return the cached array for ``block_id`` (faulting it in).

        The returned array is the pool's resident copy: mutations are
        visible to later ``get`` calls.  Callers that mutate must pass
        ``for_write=True`` (or call :meth:`mark_dirty`) so the block is
        written back on eviction.
        """
        frame = self._frames.get(block_id)
        if frame is not None:
            self._frames.move_to_end(block_id)
            self._device.stats.cache_hits += 1
        else:
            data = self._device.read_block(block_id)
            frame = _Frame(data)
            self._frames[block_id] = frame
            self._evict_if_needed()
        if for_write:
            frame.dirty = True
        return frame.data

    def create(self, block_id: int) -> np.ndarray:
        """Install a fresh zero-filled frame for a newly allocated block.

        No device read is charged — the block has never been written,
        so its (zero) contents are known without touching the disk.
        The frame starts dirty and will be written back on eviction.
        """
        if block_id in self._frames:
            raise KeyError(f"block {block_id} is already resident")
        frame = _Frame(np.zeros(self._device.block_slots, dtype=np.float64))
        frame.dirty = True
        self._frames[block_id] = frame
        self._evict_if_needed()
        return frame.data

    def mark_dirty(self, block_id: int) -> None:
        """Flag a resident block as modified."""
        frame = self._frames.get(block_id)
        if frame is None:
            raise KeyError(f"block {block_id} is not resident")
        frame.dirty = True

    def _evict_if_needed(self) -> None:
        while len(self._frames) > self._capacity:
            evicted_id, frame = self._frames.popitem(last=False)
            if frame.dirty:
                self._device.write_block(evicted_id, frame.data)

    def flush(self, block_id: Optional[int] = None) -> None:
        """Write back dirty blocks (one, or all when ``block_id is None``).

        Blocks stay resident; only the dirty flags are cleared.
        """
        if block_id is not None:
            frame = self._frames.get(block_id)
            if frame is not None and frame.dirty:
                self._device.write_block(block_id, frame.data)
                frame.dirty = False
            return
        for resident_id, frame in self._frames.items():
            if frame.dirty:
                self._device.write_block(resident_id, frame.data)
                frame.dirty = False

    def drop_all(self) -> None:
        """Flush everything and empty the pool (e.g. between experiments)."""
        self.flush()
        self._frames.clear()
