"""Persisting tiled stores to real files.

The simulated device lives in memory; these helpers write a tiled
store's blocks and tile directory to a single ``.npz`` file and load
them back, so a transform built once (hours of bulk loading at real
scale) can be reopened and queried across sessions — the lifecycle the
paper's maintenance scenarios assume.

Persistence moves blocks wholesale and is deliberately *uncounted*:
the I/O model measures the algorithms' block traffic, not file-system
serialisation.

Files are defended on the way back in: a format version gates the
layout, a CRC32 over the payload (blocks, metadata, directory) catches
truncated or bit-rotted files, and the pickled sections are decoded by
a restricted unpickler that only constructs plain data types and the
library's own key classes — a store file is data, not code.  Every
validation failure raises :class:`PersistFormatError` (a
``ValueError``), never a partially-restored store.
"""

from __future__ import annotations

import io
import pickle
import zipfile
import zlib
from typing import Optional

import numpy as np

from repro.storage.iostats import IOStats
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore

__all__ = [
    "PersistFormatError",
    "save_standard_store",
    "load_standard_store",
    "save_nonstandard_store",
    "load_nonstandard_store",
]

#: Version 2 added the payload checksum; version-1 files (no checksum)
#: are still readable.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class PersistFormatError(ValueError):
    """A store file failed validation (version, checksum, structure)."""


#: Global names the store-file unpickler may construct.  The pickled
#: sections hold only the meta dict and the tile directory: builtin
#: containers/scalars plus the library's tile-key dataclasses.
_ALLOWED_GLOBALS = {
    ("builtins", "dict"),
    ("builtins", "list"),
    ("builtins", "tuple"),
    ("builtins", "set"),
    ("builtins", "frozenset"),
    ("builtins", "int"),
    ("builtins", "float"),
    ("builtins", "complex"),
    ("builtins", "str"),
    ("builtins", "bytes"),
    ("builtins", "bool"),
    ("repro.wavelet.keys", "NonStandardKey"),
}


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses everything outside the allowlist."""

    def find_class(self, module: str, name: str):
        if (module, name) in _ALLOWED_GLOBALS:
            return super().find_class(module, name)
        raise PersistFormatError(
            f"store file references disallowed global {module}.{name}"
        )


def _restricted_loads(blob: bytes, section: str):
    try:
        return _RestrictedUnpickler(io.BytesIO(blob)).load()
    except PersistFormatError:
        raise
    except Exception as exc:
        raise PersistFormatError(
            f"store file section {section!r} is corrupt: {exc}"
        ) from exc


def _content_checksum(
    blocks: np.ndarray, meta_blob: bytes, directory_blob: bytes
) -> int:
    crc = zlib.crc32(np.ascontiguousarray(blocks).tobytes())
    crc = zlib.crc32(meta_blob, crc)
    return zlib.crc32(directory_blob, crc)


def _save(path, kind: str, meta: dict, store) -> None:
    tile_store = store.tile_store
    tile_store.flush()
    directory = tile_store.directory()
    meta_blob = pickle.dumps(meta)
    directory_blob = pickle.dumps(directory)
    # lint: uncounted (persistence snapshot of raw device state)
    blocks = tile_store.device.dump_blocks()
    np.savez_compressed(
        path,
        format_version=np.asarray([_FORMAT_VERSION]),
        kind=np.asarray([kind]),
        meta=np.frombuffer(meta_blob, dtype=np.uint8),
        directory=np.frombuffer(directory_blob, dtype=np.uint8),
        blocks=blocks,
        checksum=np.asarray(
            [_content_checksum(blocks, meta_blob, directory_blob)],
            dtype=np.uint64,
        ),
    )


def _load(path, expected_kind: str):
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise PersistFormatError(
            f"not a readable store file: {exc}"
        ) from exc
    with archive:
        try:
            version = int(archive["format_version"][0])
            kind = str(archive["kind"][0])
            meta_blob = archive["meta"].tobytes()
            directory_blob = archive["directory"].tobytes()
            blocks = archive["blocks"]
        except KeyError as exc:
            raise PersistFormatError(
                f"store file is missing section {exc}"
            ) from exc
        if version not in _SUPPORTED_VERSIONS:
            raise PersistFormatError(
                f"unsupported store file version {version} "
                f"(supported: {_SUPPORTED_VERSIONS})"
            )
        if kind != expected_kind:
            raise ValueError(
                f"file holds a {kind!r} store, expected {expected_kind!r}"
            )
        if version >= 2:
            try:
                stored = int(archive["checksum"][0])
            except KeyError as exc:
                raise PersistFormatError(
                    "store file is missing its checksum section"
                ) from exc
            actual = _content_checksum(blocks, meta_blob, directory_blob)
            if stored != actual:
                raise PersistFormatError(
                    f"store file failed checksum verification "
                    f"(expected 0x{stored:08x}, computed 0x{actual:08x})"
                )
        meta = _restricted_loads(meta_blob, "meta")
        directory = _restricted_loads(directory_blob, "directory")
        if not isinstance(meta, dict) or not isinstance(directory, dict):
            raise PersistFormatError(
                "store file meta/directory sections are not mappings"
            )
        return meta, directory, blocks


def save_standard_store(store: TiledStandardStore, path) -> None:
    """Write a :class:`TiledStandardStore` to ``path`` (.npz)."""
    meta = {
        "shape": tuple(store.shape),
        "block_edge": store.tiling.block_edge,
    }
    _save(path, "standard", meta, store)


def load_standard_store(
    path,
    pool_capacity: int = 8,
    stats: Optional[IOStats] = None,
) -> TiledStandardStore:
    """Reopen a store written by :func:`save_standard_store`."""
    meta, directory, blocks = _load(path, "standard")
    store = TiledStandardStore(
        meta["shape"],
        block_edge=meta["block_edge"],
        pool_capacity=pool_capacity,
        stats=stats,
    )
    # lint: uncounted (persistence restore of raw device state)
    store.tile_store.device.restore_blocks(blocks)
    store.tile_store.restore_directory(directory)
    return store


def save_nonstandard_store(store: TiledNonStandardStore, path) -> None:
    """Write a :class:`TiledNonStandardStore` to ``path`` (.npz)."""
    meta = {
        "size": store.size,
        "ndim": store.ndim,
        "block_edge": store.tiling.block_edge,
    }
    _save(path, "nonstandard", meta, store)


def load_nonstandard_store(
    path,
    pool_capacity: int = 8,
    stats: Optional[IOStats] = None,
) -> TiledNonStandardStore:
    """Reopen a store written by :func:`save_nonstandard_store`."""
    meta, directory, blocks = _load(path, "nonstandard")
    store = TiledNonStandardStore(
        meta["size"],
        meta["ndim"],
        block_edge=meta["block_edge"],
        pool_capacity=pool_capacity,
        stats=stats,
    )
    # lint: uncounted (persistence restore of raw device state)
    store.tile_store.device.restore_blocks(blocks)
    store.tile_store.restore_directory(directory)
    return store
