"""Persisting tiled stores to real files.

The simulated device lives in memory; these helpers write a tiled
store's blocks and tile directory to a single ``.npz`` file and load
them back, so a transform built once (hours of bulk loading at real
scale) can be reopened and queried across sessions — the lifecycle the
paper's maintenance scenarios assume.

Persistence moves blocks wholesale and is deliberately *uncounted*:
the I/O model measures the algorithms' block traffic, not file-system
serialisation.
"""

from __future__ import annotations

import pickle
from typing import Optional

import numpy as np

from repro.storage.iostats import IOStats
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore

__all__ = [
    "save_standard_store",
    "load_standard_store",
    "save_nonstandard_store",
    "load_nonstandard_store",
]

_FORMAT_VERSION = 1


def _save(path, kind: str, meta: dict, store) -> None:
    tile_store = store.tile_store
    tile_store.flush()
    directory = tile_store.directory()
    np.savez_compressed(
        path,
        format_version=np.asarray([_FORMAT_VERSION]),
        kind=np.asarray([kind]),
        meta=np.frombuffer(pickle.dumps(meta), dtype=np.uint8),
        directory=np.frombuffer(pickle.dumps(directory), dtype=np.uint8),
        blocks=tile_store.device.dump_blocks(),
    )


def _load(path, expected_kind: str):
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported store file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        kind = str(archive["kind"][0])
        if kind != expected_kind:
            raise ValueError(
                f"file holds a {kind!r} store, expected {expected_kind!r}"
            )
        meta = pickle.loads(archive["meta"].tobytes())
        directory = pickle.loads(archive["directory"].tobytes())
        blocks = archive["blocks"]
        return meta, directory, blocks


def save_standard_store(store: TiledStandardStore, path) -> None:
    """Write a :class:`TiledStandardStore` to ``path`` (.npz)."""
    meta = {
        "shape": tuple(store.shape),
        "block_edge": store.tiling.block_edge,
    }
    _save(path, "standard", meta, store)


def load_standard_store(
    path,
    pool_capacity: int = 8,
    stats: Optional[IOStats] = None,
) -> TiledStandardStore:
    """Reopen a store written by :func:`save_standard_store`."""
    meta, directory, blocks = _load(path, "standard")
    store = TiledStandardStore(
        meta["shape"],
        block_edge=meta["block_edge"],
        pool_capacity=pool_capacity,
        stats=stats,
    )
    store.tile_store.device.restore_blocks(blocks)
    store.tile_store.restore_directory(directory)
    return store


def save_nonstandard_store(store: TiledNonStandardStore, path) -> None:
    """Write a :class:`TiledNonStandardStore` to ``path`` (.npz)."""
    meta = {
        "size": store.size,
        "ndim": store.ndim,
        "block_edge": store.tiling.block_edge,
    }
    _save(path, "nonstandard", meta, store)


def load_nonstandard_store(
    path,
    pool_capacity: int = 8,
    stats: Optional[IOStats] = None,
) -> TiledNonStandardStore:
    """Reopen a store written by :func:`save_nonstandard_store`."""
    meta, directory, blocks = _load(path, "nonstandard")
    store = TiledNonStandardStore(
        meta["size"],
        meta["ndim"],
        block_edge=meta["block_edge"],
        pool_capacity=pool_capacity,
        stats=stats,
    )
    store.tile_store.device.restore_blocks(blocks)
    store.tile_store.restore_directory(directory)
    return store
