"""I/O accounting.

Every claim in the paper is an I/O-count claim, measured either in
*coefficients* (block size 1) or in *disk blocks* under the tiling
allocation.  :class:`IOStats` is the single mutable counter object the
whole library threads through its storage layers; algorithms increment
it in bulk so that accounting never dominates runtime.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Mutable I/O counters.

    ``block_*`` counters are bumped by the simulated block device,
    ``coefficient_*`` counters by the coefficient-level (dense) stores.
    ``cache_hits`` counts block requests absorbed by the buffer pool;
    ``cache_misses`` counts the requests that faulted a block in from
    the device (every miss is accompanied by one ``block_read``).
    ``journal_writes`` counts write-ahead-journal record appends (data
    records plus commit records) when a
    :class:`~repro.storage.journal.JournaledDevice` is in play; it is
    kept separate from ``block_writes`` so every seed experiment's
    block counts are untouched by enabling durability — the journal's
    cost is visible, but never conflated with the algorithms' block
    traffic.
    """

    block_reads: int = 0
    block_writes: int = 0
    coefficient_reads: int = 0
    coefficient_writes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    journal_writes: int = 0

    @property
    def block_ios(self) -> int:
        """Total block transfers (reads + writes)."""
        return self.block_reads + self.block_writes

    @property
    def coefficient_ios(self) -> int:
        """Total coefficient touches (reads + writes)."""
        return self.coefficient_reads + self.coefficient_writes

    @property
    def hit_rate(self) -> float:
        """Fraction of buffer-pool lookups absorbed by the cache
        (0.0 when no lookups have been recorded)."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    def reset(self) -> None:
        """Zero all counters in place."""
        self.block_reads = 0
        self.block_writes = 0
        self.coefficient_reads = 0
        self.coefficient_writes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.journal_writes = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(
            block_reads=self.block_reads,
            block_writes=self.block_writes,
            coefficient_reads=self.coefficient_reads,
            coefficient_writes=self.coefficient_writes,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            journal_writes=self.journal_writes,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return IOStats(
            block_reads=self.block_reads - earlier.block_reads,
            block_writes=self.block_writes - earlier.block_writes,
            coefficient_reads=(
                self.coefficient_reads - earlier.coefficient_reads
            ),
            coefficient_writes=(
                self.coefficient_writes - earlier.coefficient_writes
            ),
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            journal_writes=self.journal_writes - earlier.journal_writes,
        )

    def estimated_seconds(
        self,
        block_bytes: int = 4096,
        seek_ms: float = 8.0,
        transfer_mb_per_s: float = 60.0,
    ) -> float:
        """Wall-clock estimate of the counted block I/O on a disk model.

        The paper reports I/O counts because they are the
        device-independent quantity; this helper converts them to
        seconds under a simple seek-plus-transfer model (defaults are
        mid-2000s commodity-disk figures, matching the paper's era) so
        examples can phrase savings in familiar units.
        """
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be > 0, got {block_bytes}")
        if seek_ms < 0 or transfer_mb_per_s <= 0:
            raise ValueError("seek_ms must be >= 0 and transfer rate > 0")
        transfers = self.block_ios
        seek_seconds = transfers * (seek_ms / 1000.0)
        transfer_seconds = (
            transfers * block_bytes / (transfer_mb_per_s * 1024 * 1024)
        )
        return seek_seconds + transfer_seconds

    def __str__(self) -> str:
        return (
            f"IOStats(blocks: {self.block_reads}r/{self.block_writes}w, "
            f"coefficients: {self.coefficient_reads}r/"
            f"{self.coefficient_writes}w, "
            f"hits: {self.cache_hits}, misses: {self.cache_misses}, "
            f"journal: {self.journal_writes}w)"
        )
