"""Dense in-memory coefficient stores with coefficient-level I/O counting.

The paper reports some I/O costs "measured in coefficients" — i.e. with
a block size of one coefficient (Figure 11, the first column of Table
2).  These stores hold the global transform as a plain ndarray and
charge one coefficient read/write per element touched, in bulk, so that
accounting never dominates runtime.

Two addressing schemes match the two decomposition forms:

* :class:`DenseStandardStore` — cross-product region operations over
  per-axis flat-index arrays (the standard form's natural access
  pattern).
* :class:`DenseNonStandardStore` — node-region and per-key operations
  in quadtree coordinates (the non-standard form's natural access
  pattern), stored in the Mallat layout.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.obs.tracer import charge as _trace_charge
from repro.storage.iostats import IOStats
from repro.util.validation import require_power_of_two_shape
from repro.wavelet.keys import NonStandardKey
from repro.wavelet.nonstandard import require_cubic

__all__ = ["DenseStandardStore", "DenseNonStandardStore"]


class DenseStandardStore:
    """Global standard-form transform as an ndarray, counting touches."""

    def __init__(
        self, shape: Sequence[int], stats: Optional[IOStats] = None
    ) -> None:
        self._shape = require_power_of_two_shape(shape)
        self._coeffs = np.zeros(self._shape, dtype=np.float64)
        self.stats = stats if stats is not None else IOStats()

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    def _ix(self, per_axis: Sequence[np.ndarray]):
        if len(per_axis) != self.ndim:
            raise ValueError(
                f"need {self.ndim} index arrays, got {len(per_axis)}"
            )
        arrays = [np.asarray(axis, dtype=np.intp) for axis in per_axis]
        for axis, array in enumerate(arrays):
            # Fancy-index assignment applies a duplicated position only
            # once, which would silently drop accumulations — reject.
            if np.unique(array).size != array.size:
                raise ValueError(
                    f"axis {axis} index array contains duplicates"
                )
        return np.ix_(*arrays)

    def set_region(
        self, per_axis: Sequence[np.ndarray], values: np.ndarray
    ) -> None:
        """Overwrite the cross-product region (write-only I/O)."""
        self._coeffs[self._ix(per_axis)] = values
        size = int(np.asarray(values).size)
        self.stats.coefficient_writes += size
        _trace_charge("coefficient_writes", size)

    def add_region(
        self, per_axis: Sequence[np.ndarray], values: np.ndarray
    ) -> None:
        """Accumulate into the cross-product region (read-modify-write)."""
        self._coeffs[self._ix(per_axis)] += values
        size = int(np.asarray(values).size)
        self.stats.coefficient_reads += size
        self.stats.coefficient_writes += size
        _trace_charge("coefficient_reads", size)
        _trace_charge("coefficient_writes", size)

    def read_region(self, per_axis: Sequence[np.ndarray]) -> np.ndarray:
        """Read the cross-product region."""
        values = self._coeffs[self._ix(per_axis)]
        self.stats.coefficient_reads += int(values.size)
        _trace_charge("coefficient_reads", int(values.size))
        return values

    def read_point(self, position: Sequence[int]) -> float:
        self.stats.coefficient_reads += 1
        _trace_charge("coefficient_reads")
        return float(self._coeffs[tuple(int(i) for i in position)])

    def write_point(self, position: Sequence[int], value: float) -> None:
        self.stats.coefficient_writes += 1
        _trace_charge("coefficient_writes")
        self._coeffs[tuple(int(i) for i in position)] = value

    def add_point(self, position: Sequence[int], delta: float) -> None:
        self.stats.coefficient_reads += 1
        self.stats.coefficient_writes += 1
        _trace_charge("coefficient_reads")
        _trace_charge("coefficient_writes")
        self._coeffs[tuple(int(i) for i in position)] += delta

    def to_array(self) -> np.ndarray:
        """Uncounted snapshot of the whole transform (verification only)."""
        return self._coeffs.copy()


class DenseNonStandardStore:
    """Global non-standard transform (Mallat layout), counting touches."""

    def __init__(
        self,
        size: int,
        ndim: int,
        stats: Optional[IOStats] = None,
    ) -> None:
        if ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {ndim}")
        require_cubic((size,) * ndim)
        self._size = size
        self._ndim = ndim
        self._coeffs = np.zeros((size,) * ndim, dtype=np.float64)
        self.stats = stats if stats is not None else IOStats()

    @property
    def size(self) -> int:
        return self._size

    @property
    def ndim(self) -> int:
        return self._ndim

    def _detail_slices(
        self,
        level: int,
        type_mask: int,
        node_start: Sequence[int],
        node_counts: Sequence[int],
    ) -> Tuple[slice, ...]:
        width = self._size >> level
        if width == 0:
            raise ValueError(f"level {level} too deep for size {self._size}")
        slices = []
        for axis in range(self._ndim):
            offset = width if (type_mask >> axis) & 1 else 0
            start = offset + int(node_start[axis])
            slices.append(slice(start, start + int(node_counts[axis])))
        return tuple(slices)

    def set_details(
        self,
        level: int,
        type_mask: int,
        node_start: Sequence[int],
        values: np.ndarray,
    ) -> None:
        """Overwrite a contiguous node region of one detail subband."""
        values = np.asarray(values)
        region = self._detail_slices(level, type_mask, node_start, values.shape)
        self._coeffs[region] = values
        self.stats.coefficient_writes += int(values.size)
        _trace_charge("coefficient_writes", int(values.size))

    def read_details(
        self,
        level: int,
        type_mask: int,
        node_start: Sequence[int],
        node_counts: Sequence[int],
    ) -> np.ndarray:
        """Read a contiguous node region of one detail subband."""
        region = self._detail_slices(level, type_mask, node_start, node_counts)
        values = self._coeffs[region]
        self.stats.coefficient_reads += int(values.size)
        _trace_charge("coefficient_reads", int(values.size))
        return values.copy()

    def add_detail(self, key: NonStandardKey, delta: float) -> None:
        """Accumulate into one detail coefficient."""
        position = key.position(self._size)
        self.stats.coefficient_reads += 1
        self.stats.coefficient_writes += 1
        _trace_charge("coefficient_reads")
        _trace_charge("coefficient_writes")
        self._coeffs[position] += delta

    def read_detail(self, key: NonStandardKey) -> float:
        self.stats.coefficient_reads += 1
        _trace_charge("coefficient_reads")
        return float(self._coeffs[key.position(self._size)])

    def set_detail(self, key: NonStandardKey, value: float) -> None:
        self.stats.coefficient_writes += 1
        _trace_charge("coefficient_writes")
        self._coeffs[key.position(self._size)] = value

    def read_scaling(self) -> float:
        """Read the overall average."""
        self.stats.coefficient_reads += 1
        _trace_charge("coefficient_reads")
        return float(self._coeffs[(0,) * self._ndim])

    def add_scaling(self, delta: float) -> None:
        self.stats.coefficient_reads += 1
        self.stats.coefficient_writes += 1
        _trace_charge("coefficient_reads")
        _trace_charge("coefficient_writes")
        self._coeffs[(0,) * self._ndim] += delta

    def set_scaling(self, value: float) -> None:
        self.stats.coefficient_writes += 1
        _trace_charge("coefficient_writes")
        self._coeffs[(0,) * self._ndim] = value

    def to_array(self) -> np.ndarray:
        """Uncounted snapshot of the whole transform (verification only)."""
        return self._coeffs.copy()
