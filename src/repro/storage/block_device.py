"""Simulated block device.

The paper's experiments are "accurate implementations of the operations
on real disks with real disk blocks"; what they measure and report is
the *number* of disk I/Os.  This device reproduces exactly that
quantity: it stores fixed-size blocks of float64 coefficients in memory
and counts every read and write.  There is deliberately no seek/latency
model — the paper's x-axes and y-axes are I/O counts, not seconds.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.obs.tracer import charge as _trace_charge
from repro.storage.iostats import IOStats

__all__ = ["BlockDevice"]


class BlockDevice:
    """An append-allocated array of fixed-size coefficient blocks.

    Parameters
    ----------
    block_slots:
        Number of float64 coefficient slots per block (the paper's
        ``B^d`` for a ``d``-dimensional tile).
    stats:
        Counter object to charge I/Os to; a fresh one is created when
        omitted.
    """

    def __init__(self, block_slots: int, stats: Optional[IOStats] = None) -> None:
        if block_slots < 1:
            raise ValueError(f"block_slots must be >= 1, got {block_slots}")
        self._block_slots = block_slots
        self._blocks: Dict[int, np.ndarray] = {}
        self._next_id = 0
        self.stats = stats if stats is not None else IOStats()

    @property
    def block_slots(self) -> int:
        """Coefficient slots per block."""
        return self._block_slots

    @property
    def num_blocks(self) -> int:
        """Number of allocated blocks."""
        return self._next_id

    def allocate(self) -> int:
        """Allocate a zero-filled block and return its id (no I/O charged).

        Allocation itself is a metadata operation; the first write pays
        the I/O.
        """
        block_id = self._next_id
        self._next_id += 1
        return block_id

    def _check_id(self, block_id: int) -> None:
        if not 0 <= block_id < self._next_id:
            raise KeyError(f"block {block_id} was never allocated")

    def read_block(self, block_id: int) -> np.ndarray:
        """Read a block (one block-read I/O).  Returns a private copy."""
        self._check_id(block_id)
        self.stats.block_reads += 1
        _trace_charge("block_reads")
        stored = self._blocks.get(block_id)
        if stored is None:
            return np.zeros(self._block_slots, dtype=np.float64)
        return stored.copy()

    def peek_block(self, block_id: int) -> np.ndarray:
        """Uncounted copy of a block's current content (zeros if never
        written).  Used by durability layers (checksum scans, torn-write
        simulation), never by algorithms — algorithmic reads go through
        :meth:`read_block` and are charged."""
        self._check_id(block_id)
        stored = self._blocks.get(block_id)
        if stored is None:
            return np.zeros(self._block_slots, dtype=np.float64)
        return stored.copy()

    def write_block(self, block_id: int, data: np.ndarray) -> None:
        """Write a full block (one block-write I/O)."""
        self._check_id(block_id)
        if data.shape != (self._block_slots,):
            raise ValueError(
                f"block data must have shape ({self._block_slots},), "
                f"got {data.shape}"
            )
        self.stats.block_writes += 1
        _trace_charge("block_writes")
        self._blocks[block_id] = np.array(data, dtype=np.float64)

    def write_blocks(
        self, block_ids: np.ndarray, rows: np.ndarray
    ) -> None:
        """Write many full blocks at once (one block-write I/O *each*).

        ``rows[i]`` lands in ``block_ids[i]``.  Identical accounting to
        ``len(block_ids)`` calls of :meth:`write_block` — the batch
        form exists so bulk loaders can hand over a contiguous
        already-assembled buffer without paying per-call validation
        and per-row copies.

        Memory note: the stored rows are views into one shared copy of
        ``rows``, so any block still holding its view pins the whole
        batch array.  Deliberate for the simulator (bulk loads write
        each block once and keep them all); a workload that rewrites
        most blocks individually afterwards trades that retention for
        the bulk-copy speed.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self._block_slots:
            raise ValueError(
                f"rows must have shape (*, {self._block_slots}), "
                f"got {rows.shape}"
            )
        if len(block_ids) != rows.shape[0]:
            raise ValueError(
                f"{len(block_ids)} block ids for {rows.shape[0]} rows"
            )
        for block_id in block_ids:
            self._check_id(int(block_id))
        count = rows.shape[0]
        self.stats.block_writes += count
        _trace_charge("block_writes", count)
        stored = rows.copy()  # one bulk copy; rows below are views
        for index, block_id in enumerate(block_ids):
            self._blocks[int(block_id)] = stored[index]

    def bytes_used(self, coefficient_bytes: int = 8) -> int:
        """Approximate on-disk footprint of the allocated blocks."""
        return self.num_blocks * self._block_slots * coefficient_bytes

    def dump_blocks(self) -> np.ndarray:
        """Uncounted snapshot of every block as a 2-d array
        (``num_blocks x block_slots``; never-written blocks are zero).
        Used by persistence, not by algorithms."""
        out = np.zeros((self._next_id, self._block_slots), dtype=np.float64)
        for block_id, data in self._blocks.items():
            out[block_id] = data
        return out

    def restore_blocks(self, blocks: np.ndarray) -> None:
        """Uncounted bulk restore (inverse of :meth:`dump_blocks`).

        Same memory note as :meth:`write_blocks`: the restored blocks
        are row views into one shared copy of ``blocks``.
        """
        if blocks.ndim != 2 or blocks.shape[1] != self._block_slots:
            raise ValueError(
                f"blocks must have shape (*, {self._block_slots}), "
                f"got {blocks.shape}"
            )
        stored = np.array(blocks, dtype=np.float64)  # one bulk copy
        self._blocks = {
            block_id: stored[block_id]
            for block_id in range(blocks.shape[0])
        }
        self._next_id = blocks.shape[0]
