"""Chunk-organised source datasets on the counted device.

Section 5.1 assumes "the data are either organized and stored in
multidimensional chunks of equal size and shape, or that the
chunk-organization process has been performed".  This module supplies
that substrate: a dataset stored chunk-by-chunk on the simulated block
device (one chunk per block), with a directory from chunk-grid
positions to blocks — so the *input* side of a bulk transformation is
measured by the same I/O model as the output side.

Sparse datasets simply leave chunks absent: reading an absent chunk
returns zeros without I/O, and :meth:`ChunkedDataFile.occupied`
enumerates the non-empty grid, which is how a sparse bulk load avoids
touching empty regions at all.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.storage.block_device import BlockDevice
from repro.storage.buffer_pool import BufferPool
from repro.storage.iostats import IOStats
from repro.util.validation import as_float_array, require_power_of_two_shape

__all__ = ["ChunkedDataFile"]

GridPosition = Tuple[int, ...]


class ChunkedDataFile:
    """A source dataset stored as fixed-shape chunks on the device.

    Parameters
    ----------
    grid_shape:
        Number of chunks per dimension.
    chunk_shape:
        Shape of every chunk (powers of two).
    stats:
        I/O counters for the *source* side; keep separate from the
        output store's counters to attribute costs.
    pool_capacity:
        Chunks cached in memory (a scanning reader needs only 1).
    """

    def __init__(
        self,
        grid_shape: Sequence[int],
        chunk_shape: Sequence[int],
        stats: Optional[IOStats] = None,
        pool_capacity: int = 1,
    ) -> None:
        self._grid_shape = tuple(int(extent) for extent in grid_shape)
        if not self._grid_shape or any(g < 1 for g in self._grid_shape):
            raise ValueError(f"invalid grid shape {grid_shape!r}")
        self._chunk_shape = require_power_of_two_shape(
            chunk_shape, "chunk_shape"
        )
        if len(self._grid_shape) != len(self._chunk_shape):
            raise ValueError("grid and chunk ranks must match")
        cells = 1
        for extent in self._chunk_shape:
            cells *= extent
        self._device = BlockDevice(cells, stats=stats)
        self._pool = BufferPool(self._device, pool_capacity)
        self._directory: Dict[GridPosition, int] = {}

    # ------------------------------------------------------------------

    @property
    def grid_shape(self) -> GridPosition:
        return self._grid_shape

    @property
    def chunk_shape(self) -> GridPosition:
        return self._chunk_shape

    @property
    def data_shape(self) -> GridPosition:
        """Shape of the full dataset the chunks tile."""
        return tuple(
            g * c for g, c in zip(self._grid_shape, self._chunk_shape)
        )

    @property
    def stats(self) -> IOStats:
        return self._device.stats

    @property
    def occupied_chunks(self) -> int:
        return len(self._directory)

    def _check_position(self, grid_position: Sequence[int]) -> GridPosition:
        position = tuple(int(g) for g in grid_position)
        if len(position) != len(self._grid_shape):
            raise ValueError(
                f"grid position must have {len(self._grid_shape)} axes, "
                f"got {position}"
            )
        if any(
            not 0 <= g < extent
            for g, extent in zip(position, self._grid_shape)
        ):
            raise ValueError(
                f"grid position {position} out of grid {self._grid_shape}"
            )
        return position

    # ------------------------------------------------------------------

    def write_chunk(self, grid_position: Sequence[int], data) -> None:
        """Store one chunk (one block write on flush/eviction).

        All-zero chunks are *not* materialised — writing zeros to an
        absent chunk is a no-op, which is what keeps sparse datasets
        sparse on disk.
        """
        position = self._check_position(grid_position)
        array = as_float_array(data, "chunk")
        if tuple(array.shape) != self._chunk_shape:
            raise ValueError(
                f"chunk must have shape {self._chunk_shape}, "
                f"got {array.shape}"
            )
        block_id = self._directory.get(position)
        if block_id is None:
            if not np.any(array):
                return
            block_id = self._device.allocate()
            self._directory[position] = block_id
            frame = self._pool.create(block_id)
            frame[:] = array.ravel()
            return
        frame = self._pool.get(block_id, for_write=True)
        frame[:] = array.ravel()

    def read_chunk(self, grid_position: Sequence[int]) -> np.ndarray:
        """Fetch one chunk (one block read when not cached); absent
        chunks read as zeros for free."""
        position = self._check_position(grid_position)
        block_id = self._directory.get(position)
        if block_id is None:
            return np.zeros(self._chunk_shape, dtype=np.float64)
        frame = self._pool.get(block_id)
        return frame.reshape(self._chunk_shape).copy()

    def occupied(self) -> Iterator[GridPosition]:
        """Grid positions holding non-empty chunks (metadata, no I/O)."""
        return iter(sorted(self._directory))

    def flush(self) -> None:
        self._pool.flush()

    # ------------------------------------------------------------------

    @classmethod
    def from_array(
        cls,
        data,
        chunk_shape: Sequence[int],
        stats: Optional[IOStats] = None,
        pool_capacity: int = 1,
    ) -> "ChunkedDataFile":
        """Chunk-organise a dense array (the paper's preprocessing
        step; the writes are counted)."""
        array = as_float_array(data)
        chunk_shape = require_power_of_two_shape(chunk_shape, "chunk_shape")
        if array.ndim != len(chunk_shape):
            raise ValueError("data and chunk ranks must match")
        grid_shape = []
        for axis, (extent, chunk_extent) in enumerate(
            zip(array.shape, chunk_shape)
        ):
            if extent % chunk_extent:
                raise ValueError(
                    f"axis {axis}: extent {extent} is not a multiple of "
                    f"chunk extent {chunk_extent}"
                )
            grid_shape.append(extent // chunk_extent)
        chunked = cls(
            grid_shape, chunk_shape, stats=stats, pool_capacity=pool_capacity
        )
        for position in np.ndindex(*grid_shape):
            selector = tuple(
                slice(g * c, (g + 1) * c)
                for g, c in zip(position, chunk_shape)
            )
            chunked.write_chunk(position, array[selector])
        chunked.flush()
        return chunked

    def as_chunk_source(self):
        """A ``ChunkSource`` callable for the bulk-transform drivers.

        Reads are charged to this file's counters, so a driver run
        reports output-store I/O and source I/O separately.
        """
        return self.read_chunk

    def to_array(self) -> np.ndarray:
        """Uncounted dense snapshot (verification only)."""
        saved = self.stats.snapshot()
        out = np.zeros(self.data_shape, dtype=np.float64)
        for position in self._directory:
            selector = tuple(
                slice(g * c, (g + 1) * c)
                for g, c in zip(position, self._chunk_shape)
            )
            out[selector] = self.read_chunk(position)
        self.stats.block_reads = saved.block_reads
        self.stats.block_writes = saved.block_writes
        self.stats.cache_hits = saved.cache_hits
        self.stats.cache_misses = saved.cache_misses
        return out
