"""Progressive query answering over wavelet-transformed data.

The paper's introduction motivates wavelets in OLAP precisely because
they "provide approximate, progressive or even fast exact answers to
range-aggregate queries".  This module delivers the progressive mode:
a range sum is refined coarsest-level-first, yielding an estimate
after each level so a client can stop as soon as the answer is good
enough — with the I/O spent so far reported at every refinement.

The refinement order matches the tiling's band structure: coarse
levels live in few tiles near the root, so early estimates are nearly
free, and each further level adds at most the two boundary
coefficients per axis (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.reconstruct.rangesum import range_sum_weights
from repro.util.bits import ilog2
from repro.wavelet.layout import SCALING_INDEX, index_to_detail

__all__ = ["ProgressiveEstimate", "progressive_range_sum_standard"]


@dataclass(frozen=True)
class ProgressiveEstimate:
    """One refinement step of a progressive range sum.

    Attributes
    ----------
    cutoff:
        Finest decomposition level incorporated so far (the initial
        estimate uses only the coarsest terms; ``cutoff == 1`` is
        exact).
    estimate:
        Current range-sum estimate.
    coefficients_read:
        Cumulative coefficients fetched from the store.
    exact:
        True on the final refinement.
    """

    cutoff: int
    estimate: float
    coefficients_read: int
    exact: bool


def _weighted_block_sum(store, axis_terms, selectors) -> float:
    """Read one cross-product sub-block and contract with its weights."""
    block = store.read_region(
        [indices[sel] for (indices, __, __), sel in zip(axis_terms, selectors)]
    )
    for axis in range(len(axis_terms) - 1, -1, -1):
        weights = axis_terms[axis][1][selectors[axis]]
        block = block @ weights
    return float(block)


def progressive_range_sum_standard(
    store, lows: Sequence[int], highs: Sequence[int]
) -> Iterator[ProgressiveEstimate]:
    """Yield coarse-to-fine estimates of a standard-form range sum.

    The exact answer is a weighted sum over the cross product of the
    per-axis Lemma 2 coefficient sets.  Refinement at ``cutoff`` adds
    every cross-product term whose finest per-axis level equals
    ``cutoff``; each term is read exactly once over the whole
    iteration, so the total I/O equals the plain range-sum cost.  The
    last yielded estimate is exact.
    """
    shape = store.shape
    if len(lows) != len(shape) or len(highs) != len(shape):
        raise ValueError("lows/highs must match the store rank")

    # Per axis: (indices, weights, levels), where the scaling entry is
    # ranked coarser than every detail.
    axis_terms: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    coarsest = 0
    for extent, low, high in zip(shape, lows, highs):
        n = ilog2(extent)
        indices, weights = range_sum_weights(extent, int(low), int(high))
        levels = np.asarray(
            [
                n + 1
                if index == SCALING_INDEX
                else index_to_detail(n, int(index))[0]
                for index in indices
            ],
            dtype=np.int64,
        )
        axis_terms.append((indices, weights, levels))
        coarsest = max(coarsest, int(levels.max()))

    ndim = len(axis_terms)
    total = 0.0
    read = 0
    for cutoff in range(coarsest, 0, -1):
        # New terms at this cutoff: min over axes of level == cutoff.
        # Decompose disjointly by the first axis sitting exactly at the
        # cutoff; earlier axes stay strictly coarser, later axes may be
        # anything >= cutoff.
        added_any = False
        for pivot_axis in range(ndim):
            selectors = []
            empty = False
            for axis, (__, __, levels) in enumerate(axis_terms):
                if axis < pivot_axis:
                    selector = np.nonzero(levels > cutoff)[0]
                elif axis == pivot_axis:
                    selector = np.nonzero(levels == cutoff)[0]
                else:
                    selector = np.nonzero(levels >= cutoff)[0]
                if selector.size == 0:
                    empty = True
                    break
                selectors.append(selector)
            if empty:
                continue
            total += _weighted_block_sum(store, axis_terms, selectors)
            read += int(np.prod([sel.size for sel in selectors]))
            added_any = True
        if added_any or cutoff == 1:
            yield ProgressiveEstimate(
                cutoff=cutoff,
                estimate=total,
                coefficients_read=read,
                exact=(cutoff == 1),
            )
