"""Queries and partial reconstruction (paper, Lemmas 1-2 and Section
5.4)."""

from repro.reconstruct.point import (
    point_query_cost_nonstandard,
    point_query_cost_standard,
    point_query_nonstandard,
    point_query_standard,
)
from repro.reconstruct.rangesum import (
    range_sum_nonstandard,
    range_sum_standard,
    range_sum_weights,
)
from repro.reconstruct.region import (
    cubic_dyadic_cover,
    reconstruct_box_nonstandard,
    reconstruct_box_pointwise,
    reconstruct_box_standard,
    reconstruct_full_nonstandard,
    reconstruct_full_standard,
)
from repro.reconstruct.progressive import (
    ProgressiveEstimate,
    progressive_range_sum_standard,
)
from repro.reconstruct.scalings import (
    point_query_single_tile,
    populate_scalings_standard,
)
from repro.reconstruct.scalings_ns import (
    point_query_single_tile_nonstandard,
    populate_scalings_nonstandard,
)

__all__ = [
    "ProgressiveEstimate",
    "cubic_dyadic_cover",
    "point_query_single_tile",
    "point_query_single_tile_nonstandard",
    "populate_scalings_nonstandard",
    "populate_scalings_standard",
    "progressive_range_sum_standard",
    "point_query_cost_nonstandard",
    "point_query_cost_standard",
    "point_query_nonstandard",
    "point_query_standard",
    "range_sum_nonstandard",
    "range_sum_standard",
    "range_sum_weights",
    "reconstruct_box_nonstandard",
    "reconstruct_box_pointwise",
    "reconstruct_box_standard",
    "reconstruct_full_nonstandard",
    "reconstruct_full_standard",
]
