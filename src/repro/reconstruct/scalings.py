"""Redundant per-tile scaling coefficients and single-block queries.

Section 3 stores, in the spare slot of each tile, "the scaling
coefficient corresponding to the root of the subtree", noting that
"the extra scaling coefficients ... can dramatically reduce query
costs".  With them in place, reconstructing a data value needs *one*
disk block: the leaf-band tile alone contains a scaling coefficient
whose support covers the point plus every finer detail on the path.

For the standard multidimensional tiling the spare slots are the
cross-product combinations in which one or more axes use slot 0; the
stored value is the *hybrid* coefficient — scaling basis along those
axes, wavelet basis along the others — i.e. the partially inverted
transform.  :func:`populate_scalings_standard` fills every tile's
hybrid slots in one maintenance pass; :func:`point_query_single_tile`
then answers point queries from the leaf tile only.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.storage.tiled import TiledStandardStore
from repro.wavelet.layout import detail_index

__all__ = ["populate_scalings_standard", "point_query_single_tile"]


def _partial_scaling_axis(array: np.ndarray, axis: int, level: int) -> np.ndarray:
    """Invert one axis of a transformed array down to ``level``.

    The input axis is in flat transform layout (length ``N``); the
    output axis holds the scaling coefficients ``u_{level, p}``
    (length ``N / 2^level``), with every other axis untouched.
    ``u_{level, p} = u_{n,0} + sum_{j>level} ± w_{j, p >> (j-level)}``.
    """
    moved = np.moveaxis(array, axis, -1)
    extent = moved.shape[-1]
    n = extent.bit_length() - 1
    width = extent >> level
    positions = np.arange(width, dtype=np.int64)
    out = np.repeat(moved[..., :1], width, axis=-1)
    for j in range(level + 1, n + 1):
        ancestors = positions >> (j - level)
        signs = np.where((positions >> (j - level - 1)) & 1, -1.0, 1.0)
        flat = (np.int64(1) << (n - j)) + ancestors
        out = out + moved[..., flat] * signs
    return np.moveaxis(out, -1, axis)


def populate_scalings_standard(store: TiledStandardStore) -> int:
    """Fill every tile's redundant scaling slots (slot-0 combinations).

    One maintenance pass: reads the whole transform, computes the
    hybrid partially-inverted arrays, and rewrites every tile with its
    spare slots populated.  Returns the number of tiles written.
    Charged as block I/O on the store's counters (a full read + full
    write sweep).  Re-run after bulk changes to the transform.
    """
    tiling = store.tiling
    ndim = store.ndim
    edge = tiling.block_edge

    full_axes = [np.arange(extent, dtype=np.int64) for extent in store.shape]
    hat = store.read_region(full_axes)

    # Partially inverted arrays for every per-axis band combination.
    # combo[a] is None (axis still fully transformed) or a band index
    # (axis inverted to that band's root level).
    partials: Dict[Tuple, np.ndarray] = {(None,) * ndim: hat}
    for axis in range(ndim):
        axis_tiling = tiling.dim(axis)
        for combo, array in list(partials.items()):
            if combo[axis] is not None:
                continue
            for band in range(axis_tiling.num_bands):
                level = axis_tiling.band_root_level(band)
                new_combo = combo[:axis] + (band,) + combo[axis + 1 :]
                if new_combo in partials:
                    continue
                partials[new_combo] = _partial_scaling_axis(
                    array, axis, level
                )

    # Per-axis tile inventories: (band, root, detail slots, flat idx).
    per_axis_tiles: List[List[Tuple[int, int, np.ndarray, np.ndarray]]] = []
    for axis in range(ndim):
        axis_tiling = tiling.dim(axis)
        inventory = []
        for band in range(axis_tiling.num_bands):
            for root in range(axis_tiling.tiles_in_band(band)):
                slots: List[int] = []
                flats: List[int] = []
                for level, position, slot in axis_tiling.details_of_tile(
                    (band, root)
                ):
                    slots.append(slot)
                    flats.append(
                        detail_index(axis_tiling.levels, level, position)
                    )
                inventory.append(
                    (
                        band,
                        root,
                        np.asarray(slots, dtype=np.intp),
                        np.asarray(flats, dtype=np.intp),
                    )
                )
        per_axis_tiles.append(inventory)

    written = 0

    def fill(axis: int, chosen: List[Tuple[int, int, np.ndarray, np.ndarray]]):
        nonlocal written
        if axis == ndim:
            key = tuple((band, root) for band, root, __, __ in chosen)
            tile = store.tile_store.tile(key, for_write=True)
            view = tile.reshape((edge,) * ndim)
            # One gather per subset of "scaling axes".
            for mask in range(1 << ndim):
                combo = tuple(
                    chosen[a][0] if (mask >> a) & 1 else None
                    for a in range(ndim)
                )
                source = partials[combo]
                src_index = []
                dst_index = []
                for a in range(ndim):
                    band, root, slots, flats = chosen[a]
                    if (mask >> a) & 1:
                        src_index.append(np.asarray([root], dtype=np.intp))
                        dst_index.append(np.asarray([0], dtype=np.intp))
                    else:
                        src_index.append(flats)
                        dst_index.append(slots)
                view[np.ix_(*dst_index)] = source[np.ix_(*src_index)]
            written += 1
            return
        for entry in per_axis_tiles[axis]:
            chosen.append(entry)
            fill(axis + 1, chosen)
            chosen.pop()

    fill(0, [])
    store.flush()
    return written


def point_query_single_tile(
    store: TiledStandardStore, position: Sequence[int]
) -> float:
    """Reconstruct one data value from its leaf-band tile alone.

    Requires :func:`populate_scalings_standard` to have run.  Per axis
    the tile holds the band-root scaling (slot 0) and all finer path
    details, so the reconstruction never leaves the block: one block
    read per query versus one per band without the redundancy.
    """
    tiling = store.tiling
    ndim = store.ndim
    edge = tiling.block_edge
    if len(position) != ndim:
        raise ValueError(f"position must have {ndim} axes, got {position}")

    key_parts = []
    weights = []
    for axis in range(ndim):
        axis_tiling = tiling.dim(axis)
        coordinate = int(position[axis])
        if not 0 <= coordinate < store.shape[axis]:
            raise ValueError(f"position {position} out of the domain")
        root_level = axis_tiling.band_root_level(0)
        root = coordinate >> root_level
        key_parts.append((0, root))
        axis_weights = np.zeros(edge, dtype=np.float64)
        axis_weights[0] = 1.0  # the in-tile scaling u_{r, root}
        for level in range(1, root_level + 1):
            slot = axis_tiling.slot_of_detail(level, coordinate >> level)
            sign = -1.0 if (coordinate >> (level - 1)) & 1 else 1.0
            axis_weights[slot] = sign
        weights.append(axis_weights)

    tile = store.tile_store.peek(tuple(key_parts))
    if tile is None:
        raise RuntimeError(
            "leaf tile not materialised — run populate_scalings_standard "
            "after loading or updating the transform"
        )
    block = tile.reshape((edge,) * ndim)
    for axis_weights in reversed(weights):
        block = block @ axis_weights
    return float(block)
