"""Partial reconstruction of arbitrary regions (paper, Section 5.4).

Dyadic regions go straight through the inverse SHIFT-SPLIT
(:func:`repro.core.standard_ops.extract_region_standard`,
:func:`repro.core.nonstandard_ops.extract_region_nonstandard`);
arbitrary axis-aligned boxes are first decomposed into their canonical
dyadic cover (cubic pieces for the non-standard form) and each piece is
extracted independently.

Two naive baselines frame Result 6's comparison:

* full reconstruction then slicing — reasonable when the region spans
  most of the data;
* point-by-point reconstruction — reasonable for tiny regions.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.nonstandard_ops import extract_region_nonstandard
from repro.core.plans import get_standard_plan, plans_enabled
from repro.core.standard_ops import extract_region_standard
from repro.reconstruct.point import (
    point_query_nonstandard,
    point_query_standard,
)
from repro.util.dyadic import DyadicBox, dyadic_box_cover

__all__ = [
    "cubic_dyadic_cover",
    "reconstruct_box_standard",
    "reconstruct_box_nonstandard",
    "reconstruct_box_pointwise",
    "reconstruct_full_standard",
    "reconstruct_full_nonstandard",
    "warm_region_plans",
]


def warm_region_plans(
    store, starts: Sequence[int], stops: Sequence[int]
) -> int:
    """Pre-compile the extraction plans of a box's dyadic cover.

    Each piece of the cover extracts through a cached
    :class:`~repro.core.plans.StandardChunkPlan`; a latency-sensitive
    caller (the query service warming up a hot region) can pay the
    compilation cost ahead of the first query.  Touches no store data
    and charges no I/O.  Returns the number of plans now resident;
    no-op (returning 0) when plans are disabled.
    """
    if not plans_enabled():
        return 0
    count = 0
    for box in dyadic_box_cover(
        [int(s) for s in starts], [int(s) for s in stops]
    ):
        grid_position = tuple(
            start // extent for start, extent in zip(box.starts, box.shape)
        )
        get_standard_plan(store.shape, box.shape, grid_position)
        count += 1
    return count


def cubic_dyadic_cover(
    starts: Sequence[int], stops: Sequence[int]
) -> Iterator[DyadicBox]:
    """Cover a box with disjoint *cubic* dyadic boxes.

    The non-standard inverse SHIFT-SPLIT works on cubic ranges (the
    paper treats arbitrary ranges as collections of cubic intervals);
    each piece of the canonical cover is subdivided to its smallest
    extent.
    """
    for box in dyadic_box_cover(starts, stops):
        edge = min(interval.length for interval in box.intervals)
        grids = [interval.length // edge for interval in box.intervals]
        for offsets in np.ndindex(*grids):
            corner = [
                interval.start + offset * edge
                for interval, offset in zip(box.intervals, offsets)
            ]
            yield DyadicBox.from_corner(corner, [edge] * len(corner))


def reconstruct_box_standard(
    store, starts: Sequence[int], stops: Sequence[int]
) -> np.ndarray:
    """Reconstruct ``data[starts:stops]`` from a standard-form store
    by extracting each piece of the canonical dyadic cover."""
    starts = [int(s) for s in starts]
    stops = [int(s) for s in stops]
    out = np.zeros(
        tuple(stop - start for start, stop in zip(starts, stops)),
        dtype=np.float64,
    )
    for box in dyadic_box_cover(starts, stops):
        piece = extract_region_standard(store, box.starts, box.shape)
        selector = tuple(
            slice(interval.start - start, interval.stop - start)
            for interval, start in zip(box.intervals, starts)
        )
        out[selector] = piece
    return out


def reconstruct_box_nonstandard(
    store, starts: Sequence[int], stops: Sequence[int]
) -> np.ndarray:
    """Reconstruct ``data[starts:stops]`` from a non-standard store via
    the cubic dyadic cover."""
    starts = [int(s) for s in starts]
    stops = [int(s) for s in stops]
    out = np.zeros(
        tuple(stop - start for start, stop in zip(starts, stops)),
        dtype=np.float64,
    )
    for box in cubic_dyadic_cover(starts, stops):
        piece = extract_region_nonstandard(
            store, box.starts, box.intervals[0].length
        )
        selector = tuple(
            slice(interval.start - start, interval.stop - start)
            for interval, start in zip(box.intervals, starts)
        )
        out[selector] = piece
    return out


def reconstruct_box_pointwise(
    store, starts: Sequence[int], stops: Sequence[int], form: str = "standard"
) -> np.ndarray:
    """Naive baseline: reconstruct the box one point query at a time."""
    if form == "standard":
        query = point_query_standard
    elif form == "nonstandard":
        query = point_query_nonstandard
    else:
        raise ValueError(f"unknown form {form!r}")
    starts = [int(s) for s in starts]
    stops = [int(s) for s in stops]
    shape = tuple(stop - start for start, stop in zip(starts, stops))
    out = np.empty(shape, dtype=np.float64)
    for offsets in np.ndindex(*shape):
        position = tuple(
            start + offset for start, offset in zip(starts, offsets)
        )
        out[offsets] = query(store, position)
    return out


def reconstruct_full_standard(store) -> np.ndarray:
    """Naive baseline: reconstruct the entire dataset (then the caller
    slices).  One dyadic region covering everything."""
    return extract_region_standard(
        store, [0] * len(store.shape), store.shape
    )


def reconstruct_full_nonstandard(store) -> np.ndarray:
    """Naive baseline: reconstruct the entire cube."""
    return extract_region_nonstandard(
        store, [0] * store.ndim, store.size
    )
