"""Redundant per-tile scalings for the *non-standard* tiling.

The non-standard counterpart of :mod:`repro.reconstruct.scalings`:
slot 0 of each quadtree-subtree tile holds the scaling coefficient
``u_{r, root}`` of the subtree root — the average of the data over the
tile's support cube.  With it stored, a point query needs only the
leaf-band tile: the in-tile reconstruction walks the quadtree path
*inside* the tile, starting from the stored scaling.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.storage.tiled import TiledNonStandardStore
from repro.wavelet.keys import NonStandardKey

__all__ = [
    "populate_scalings_nonstandard",
    "point_query_single_tile_nonstandard",
]


def populate_scalings_nonstandard(store: TiledNonStandardStore) -> int:
    """Fill slot 0 of every tile with its subtree-root scaling.

    One maintenance pass: reconstructs the scaling pyramid from the
    stored transform top-down (each level halves per axis, adding the
    level's details), then writes each tile's root scaling.  Returns
    the number of tiles written.
    """
    tiling = store.tiling
    size = store.size
    ndim = store.ndim
    n = size.bit_length() - 1

    # Scaling pyramid: scalings[level] has shape (size >> level,)^d.
    scalings = {n: np.full((1,) * ndim, store.read_scaling())}
    for level in range(n, 0, -1):
        width = size >> level
        parent = scalings[level]
        child = np.zeros((2 * width,) * ndim, dtype=np.float64)
        # u_child = u_parent + sum over masks ± detail(level, node, mask)
        details = {
            mask: store.read_details(
                level, mask, (0,) * ndim, (width,) * ndim
            )
            for mask in range(1, 1 << ndim)
        }
        for child_bits in range(1 << ndim):
            selector = tuple(
                slice((child_bits >> axis) & 1, None, 2)
                for axis in range(ndim)
            )
            value = parent.copy()
            for mask, block in details.items():
                sign = 1.0
                for axis in range(ndim):
                    if (mask >> axis) & 1 and (child_bits >> axis) & 1:
                        sign = -sign
                value = value + sign * block
            child[selector] = value
        scalings[level - 1] = child

    written = 0
    for band in range(tiling.num_bands):
        root_level = tiling.band_root_level(band)
        side = size >> root_level
        level_scalings = scalings[root_level]
        for root in np.ndindex(*(side,) * ndim):
            key = (band, tuple(int(r) for r in root))
            tile = store.tile_store.tile(key, for_write=True)
            tile[0] = float(level_scalings[root])
            written += 1
    store.flush()
    return written


def point_query_single_tile_nonstandard(
    store: TiledNonStandardStore, position: Sequence[int]
) -> float:
    """Reconstruct one cube value from its leaf-band tile alone.

    Requires :func:`populate_scalings_nonstandard`.  One block read:
    the tile holds the band-root scaling plus all finer path details.
    """
    tiling = store.tiling
    ndim = store.ndim
    point = tuple(int(x) for x in position)
    if len(point) != ndim:
        raise ValueError(f"position must have {ndim} axes, got {position}")
    if any(not 0 <= x < store.size for x in point):
        raise ValueError(f"position {point} out of the domain")

    root_level = tiling.band_root_level(0)
    root = tuple(x >> root_level for x in point)
    key = (0, root)
    tile = store.tile_store.peek(key)
    if tile is None:
        raise RuntimeError(
            "leaf tile not materialised — run "
            "populate_scalings_nonstandard after loading or updating "
            "the transform"
        )
    value = float(tile[0])  # the stored u_{r, root}
    for level in range(root_level, 0, -1):
        node = tuple(x >> level for x in point)
        for mask in range(1, 1 << ndim):
            sign = 1.0
            for axis in range(ndim):
                if (mask >> axis) & 1 and (point[axis] >> (level - 1)) & 1:
                    sign = -sign
            __, slot = tiling.locate_key(
                NonStandardKey(level, node, mask)
            )
            value += sign * float(tile[slot])
    return value
