"""Range-sum queries against stored transforms (paper, Lemma 2).

Haar wavelets have a vanishing 0-th moment, so a detail coefficient
contributes to a range sum only when the range cuts its support: at
most two details per level per axis.  A 1-d range sum therefore needs
at most ``2 log N + 1`` coefficients; standard-form multidimensional
range sums need the cross product of the per-axis boundary sets —
the OLAP workload the paper's tiling is designed for.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.util.bits import ilog2
from repro.wavelet.layout import SCALING_INDEX

__all__ = [
    "range_sum_weights",
    "range_sum_standard",
    "range_sum_nonstandard",
]


def _overlap(lo: int, hi: int, start: int, stop: int) -> int:
    """Length of ``[lo, hi) ∩ [start, stop)``."""
    return max(0, min(hi, stop) - max(lo, start))


def range_sum_weights(
    size: int, low: int, high: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices and weights so that ``sum(data[low:high+1])`` equals the
    dot product of the returned weights with the flat transform at the
    returned indices.

    At most ``2n + 1`` entries (Lemma 2).
    """
    n = ilog2(size)
    if not 0 <= low <= high < size:
        raise ValueError(
            f"need 0 <= low <= high < {size}, got [{low}, {high}]"
        )
    indices: List[int] = [SCALING_INDEX]
    weights: List[float] = [float(high - low + 1)]
    for level in range(1, n + 1):
        for position in {low >> level, high >> level}:
            start = position << level
            mid = start + (1 << (level - 1))
            stop = start + (1 << level)
            net = _overlap(low, high + 1, start, mid) - _overlap(
                low, high + 1, mid, stop
            )
            if net:
                indices.append((1 << (n - level)) + position)
                weights.append(float(net))
    return (
        np.asarray(indices, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )


def range_sum_standard(
    store, lows: Sequence[int], highs: Sequence[int]
) -> float:
    """Standard-form multidimensional range sum over the box
    ``[lows, highs]`` (inclusive per axis)."""
    shape = store.shape
    if len(lows) != len(shape) or len(highs) != len(shape):
        raise ValueError("lows/highs must match the store rank")
    axis_indices = []
    axis_weights = []
    for extent, low, high in zip(shape, lows, highs):
        indices, weights = range_sum_weights(extent, int(low), int(high))
        axis_indices.append(indices)
        axis_weights.append(weights)
    block = store.read_region(axis_indices)
    for weights in reversed(axis_weights):
        block = block @ weights
    return float(block)


def range_sum_nonstandard(
    store, lows: Sequence[int], highs: Sequence[int]
) -> float:
    """Non-standard multidimensional range sum over ``[lows, highs]``.

    A detail of type ``mask`` at level ``j`` contributes the product of
    per-axis factors: the signed half-overlap for differenced axes
    (nonzero only at the two range boundaries) and the plain overlap
    count for smooth axes.  The overall average contributes the box's
    cell count.
    """
    size = store.size
    ndim = store.ndim
    n = ilog2(size)
    lows = [int(x) for x in lows]
    highs = [int(x) for x in highs]
    if any(not 0 <= lo <= hi < size for lo, hi in zip(lows, highs)):
        raise ValueError(f"invalid box [{lows}, {highs}] for size {size}")

    cells = 1.0
    for lo, hi in zip(lows, highs):
        cells *= hi - lo + 1
    total = store.read_scaling() * cells

    for level in range(1, n + 1):
        width = 1 << level
        half = width >> 1
        node_ranges = [
            (lo >> level, hi >> level) for lo, hi in zip(lows, highs)
        ]
        # Per-axis factors for every candidate node position.
        smooth_factors = []
        diff_boundaries = []  # [(position, factor), ...] per axis
        for axis in range(ndim):
            first, last = node_ranges[axis]
            positions = np.arange(first, last + 1, dtype=np.int64)
            starts = positions << level
            smooth = np.asarray(
                [
                    _overlap(lows[axis], highs[axis] + 1, s, s + width)
                    for s in starts
                ],
                dtype=np.float64,
            )
            smooth_factors.append(smooth)
            boundaries = []
            for position in {first, last}:
                start = position << level
                net = _overlap(
                    lows[axis], highs[axis] + 1, start, start + half
                ) - _overlap(
                    lows[axis], highs[axis] + 1, start + half, start + width
                )
                if net:
                    boundaries.append((position, float(net)))
            diff_boundaries.append(boundaries)

        for type_mask in range(1, 1 << ndim):
            # Differenced axes contribute only at the (<= 2) range
            # boundaries; smooth axes span their whole node range and
            # are read as one contiguous region per boundary combo.
            mask_axes = [
                axis for axis in range(ndim) if (type_mask >> axis) & 1
            ]
            if any(not diff_boundaries[axis] for axis in mask_axes):
                continue
            boundary_choices = [diff_boundaries[axis] for axis in mask_axes]
            for picks in np.ndindex(*[len(c) for c in boundary_choices]):
                node_start = [0] * ndim
                node_counts = [0] * ndim
                weight_vectors = []
                boundary_weight = 1.0
                for choice_index, axis in enumerate(mask_axes):
                    position, factor = boundary_choices[choice_index][
                        picks[choice_index]
                    ]
                    node_start[axis] = position
                    node_counts[axis] = 1
                    boundary_weight *= factor
                for axis in range(ndim):
                    if (type_mask >> axis) & 1:
                        weight_vectors.append(np.ones(1))
                        continue
                    first, last = node_ranges[axis]
                    node_start[axis] = first
                    node_counts[axis] = last - first + 1
                    weight_vectors.append(smooth_factors[axis])
                block = store.read_details(
                    level, type_mask, node_start, node_counts
                )
                for weights in reversed(weight_vectors):
                    block = block @ weights
                total += boundary_weight * float(block)
    return float(total)
