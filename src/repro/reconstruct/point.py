"""Point queries against stored transforms (paper, Lemma 1).

A single data value depends on exactly the coefficients on the
leaf-to-root path: ``(n+1)^d`` coefficients in the standard form (the
cross product of per-axis paths, Figure 6) and ``(2^d - 1) n + 1`` in
the non-standard form (all details of each path node, Figure 7).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.bits import ilog2
from repro.wavelet.quadtree import NonStandardTree
from repro.wavelet.tree import WaveletTree

__all__ = [
    "point_query_standard",
    "point_query_nonstandard",
    "point_query_cost_standard",
    "point_query_cost_nonstandard",
]


def point_query_standard(store, position: Sequence[int]) -> float:
    """Reconstruct ``data[position]`` from a standard-form store.

    Reads the cross product of per-axis root paths and contracts with
    the per-axis reconstruction signs.
    """
    shape = store.shape
    if len(position) != len(shape):
        raise ValueError(
            f"position must have {len(shape)} axes, got {position}"
        )
    axis_indices = []
    axis_signs = []
    for extent, coordinate in zip(shape, position):
        tree = WaveletTree(extent)
        axis_indices.append(
            np.asarray(tree.root_path(int(coordinate)), dtype=np.int64)
        )
        axis_signs.append(
            np.asarray(
                tree.reconstruction_signs(int(coordinate)), dtype=np.float64
            )
        )
    block = store.read_region(axis_indices)
    for signs in reversed(axis_signs):
        block = block @ signs
    return float(block)


def point_query_nonstandard(store, position: Sequence[int]) -> float:
    """Reconstruct ``data[position]`` from a non-standard store.

    Walks the quadtree path bottom-up, adding each node's ``2^d - 1``
    details with their ``±1`` weights, starting from the overall
    average.
    """
    tree = NonStandardTree(store.size, store.ndim)
    point = tuple(int(x) for x in position)
    if any(not 0 <= x < store.size for x in point):
        raise ValueError(f"position {point} out of the domain")
    value = store.read_scaling()
    for key in tree.root_path_keys(point):
        weight = tree.reconstruction_weight(key, point)
        value += weight * store.read_detail(key)
    return float(value)


def point_query_cost_standard(shape) -> int:
    """Coefficients a standard point query touches: ``prod(n_i + 1)``."""
    cost = 1
    for extent in shape:
        cost *= ilog2(extent) + 1
    return cost


def point_query_cost_nonstandard(size: int, ndim: int) -> int:
    """Coefficients a non-standard point query touches:
    ``(2^d - 1) n + 1``."""
    return ((1 << ndim) - 1) * ilog2(size) + 1
