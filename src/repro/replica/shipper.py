"""Primary-side journal shipping.

The shipper installs itself as the journal's ``on_commit`` observer, so
every committed group is framed and offered to the attached sinks
*inside* ``write_batch`` — after the commit record is durable, before
the update is acknowledged.  That ordering is what makes "zero
acknowledged updates lost" provable: by the time a client sees success,
every in-process follower sink has been handed the group.

Frames are retained in a bounded deque so a follower that reconnects
can resume from its last acked seq (``frames_since``); a follower that
fell behind the retention window gets ``None`` — the gap signal — and
must re-snapshot.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from ..fault.crash import CrashPlan
from ..storage.journal import JournaledDevice, WriteAheadJournal
from .frames import FRAME_GROUP, encode_frame

Sink = Callable[[bytes], None]


class JournalShipper:
    """Tails a :class:`WriteAheadJournal` and streams framed groups.

    ``retain`` bounds the resume window in groups; a follower lagging
    further than that must take a fresh snapshot.  Sinks are invoked
    synchronously in commit order but *outside* the shipper lock, so a
    slow sink delays the commit path (by design — ship-before-ack) but
    cannot deadlock against ``frames_since``/``ack`` readers.
    """

    def __init__(
        self,
        device: Union[JournaledDevice, WriteAheadJournal],
        retain: int = 256,
    ) -> None:
        if isinstance(device, JournaledDevice):
            journal = device.journal
        else:
            journal = device
        if journal.on_commit is not None:
            raise RuntimeError("journal already has an on_commit observer")
        self._journal = journal
        self._lock = threading.Lock()
        retained: Deque[Tuple[int, bytes]] = deque(maxlen=max(1, retain))
        self._retained = retained  # guarded-by: _lock
        self._sinks: List[Sink] = []  # guarded-by: _lock
        self._acks: Dict[str, int] = {}  # guarded-by: _lock
        #: Groups committed before the shipper attached are not
        #: retained; resuming below this point is a gap.
        self._base_seq = journal.next_seq - 1  # guarded-by: _lock
        self.groups_shipped = 0  # guarded-by: _lock
        self.bytes_shipped = 0  # guarded-by: _lock
        self.last_seq = self._base_seq  # guarded-by: _lock
        #: Crash-site plan for the chaos matrix (survey/armed protocol
        #: identical to the storage crash matrix).
        self.crash: Optional[CrashPlan] = None
        journal.on_commit = self._on_commit

    # ------------------------------------------------------------------

    def detach_journal(self) -> None:
        """Stop observing commits (e.g. when a hub closes)."""
        if self._journal.on_commit is self._on_commit:
            self._journal.on_commit = None

    def attach(self, sink: Sink) -> None:
        with self._lock:
            self._sinks.append(sink)

    def detach(self, sink: Sink) -> None:
        with self._lock:
            self._sinks = [s for s in self._sinks if s is not sink]

    # ------------------------------------------------------------------

    def _on_commit(self, seq: int, records: bytes) -> None:
        frame = encode_frame(FRAME_GROUP, seq, records)
        crash = self.crash
        if crash is not None:
            crash.point("ship.framed")
        with self._lock:
            self._retained.append((seq, frame))
            self.groups_shipped += 1
            self.bytes_shipped += len(frame)
            self.last_seq = seq
            sinks = list(self._sinks)
        for i, sink in enumerate(sinks):
            if crash is not None:
                # A dying primary can deliver half a frame; the
                # follower's decoder must hold it as a torn tail.
                def tear(s: Sink = sink, f: bytes = frame) -> None:
                    s(f[: max(1, len(f) // 2)])

                crash.point(f"ship.sink{i}.torn", before=tear)
            sink(frame)
            if crash is not None:
                crash.point(f"ship.sink{i}.sent")

    # ------------------------------------------------------------------

    def frames_since(self, after_seq: int) -> Optional[List[bytes]]:
        """Frames for every retained group with seq > ``after_seq``, in
        order.  Returns ``[]`` when caught up and ``None`` when the
        follower's position predates the retention window (gap —
        re-snapshot required)."""
        with self._lock:
            if after_seq >= self.last_seq:
                return []
            if after_seq < self._base_seq:
                return None
            oldest = (
                self._retained[0][0] if self._retained else self.last_seq + 1
            )
            if after_seq + 1 < oldest:
                return None
            return [frame for seq, frame in self._retained if seq > after_seq]

    def ack(self, follower_id: str, seq: int) -> None:
        with self._lock:
            prev = self._acks.get(follower_id, -1)
            self._acks[follower_id] = max(prev, seq)

    def acks(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._acks)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "groups_shipped": self.groups_shipped,
                "bytes_shipped": self.bytes_shipped,
                "last_seq": self.last_seq,
                "retained": len(self._retained),
                "sinks": len(self._sinks),
                "acks": dict(self._acks),
            }
