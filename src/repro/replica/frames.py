"""Wire framing for shipped journal groups.

A frame is ``header || payload`` where the header packs magic, kind,
sequence number, payload length, and a CRC32 over ``(kind, seq,
payload)``.  The framing mirrors the journal's own record format: a
torn tail (partial header or partial payload) is *detected and held*,
never misparsed, and any corruption — flipped bit, bad magic, insane
length — surfaces as :class:`FrameError` so the follower can resync
from its last acked group instead of silently diverging.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List

#: Group frame: payload is the raw journal record bytes of one
#: committed group (data records + commit record).
FRAME_GROUP = 1
#: Heartbeat: empty payload; carries the primary's latest seq so an
#: idle follower can tell "caught up" from "stream dead".
FRAME_HEARTBEAT = 2

_MAGIC = b"RSF1"
_HEADER = struct.Struct("<4sBQQI")  # magic, kind, seq, payload_len, crc
#: A single group's payload is bounded by the journal's group size
#: (D data records + commit); anything past this is corruption, not
#: a legitimately huge group.
_MAX_PAYLOAD = 64 * 1024 * 1024


class FrameError(ValueError):
    """The stream is corrupt at the current position (bad magic, CRC
    mismatch, or implausible length).  Resync via snapshot or replay
    from the last acked seq."""


@dataclass(frozen=True)
class Frame:
    kind: int
    seq: int
    payload: bytes


def _crc(kind: int, seq: int, payload: bytes) -> int:
    return zlib.crc32(struct.pack("<BQ", kind, seq) + payload) & 0xFFFFFFFF


def encode_frame(kind: int, seq: int, payload: bytes = b"") -> bytes:
    return (
        _HEADER.pack(_MAGIC, kind, seq, len(payload), _crc(kind, seq, payload))
        + payload
    )


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get back the
    complete frames they finish.  A partial frame stays buffered across
    calls (``pending_bytes``); a *corrupt* prefix raises."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def discard_tail(self) -> int:
        """Drop any buffered partial frame (a torn tail after the
        stream source died).  Returns the number of bytes discarded."""
        n = len(self._buf)
        self._buf = bytearray()
        return n

    def feed(self, data: bytes) -> List[Frame]:
        self._buf.extend(data)
        out: List[Frame] = []
        while True:
            if len(self._buf) < _HEADER.size:
                break
            magic, kind, seq, length, crc = _HEADER.unpack_from(self._buf, 0)
            if magic != _MAGIC:
                raise FrameError(f"bad frame magic {magic!r} at seq~{seq}")
            if length > _MAX_PAYLOAD:
                raise FrameError(f"implausible frame length {length}")
            end = _HEADER.size + length
            if len(self._buf) < end:
                break  # torn tail — wait for more bytes
            payload = bytes(self._buf[_HEADER.size : end])
            if _crc(kind, seq, payload) != crc:
                raise FrameError(f"frame CRC mismatch for seq {seq}")
            del self._buf[:end]
            self.frames_decoded += 1
            out.append(Frame(kind=kind, seq=seq, payload=payload))
        return out
