"""Health-checked failover.

A :class:`FailoverController` probes the primary's ``/healthz`` and
promotes the most caught-up follower after N consecutive probe
failures — where "failure" is a dead endpoint, a non-OK status, or
(optionally) the primary's own circuit breaker reporting open.  The
decision logic is a pure, clock-injected ``tick()`` so tests drive it
deterministically; ``start()`` merely reschedules ``tick`` on a timer
thread.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class ProbeResult:
    healthy: bool
    breaker_open: bool = False
    detail: str = ""


def http_health_probe(url: str, timeout_s: float = 1.0) -> ProbeResult:
    """Probe ``url``'s ``/healthz``.  Unreachable or non-JSON ⇒
    unhealthy; a ``shedding`` status with any tenant breaker open is
    reported separately so policy can decide whether that counts."""
    try:
        req = urllib.request.Request(url.rstrip("/") + "/healthz")
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            payload = json.loads(resp.read())
    except Exception as exc:  # noqa: BLE001 — transport failure = "down"
        return ProbeResult(healthy=False, detail=f"probe error: {exc}")
    status = str(payload.get("status", "unknown"))
    breaker_open = any(
        cube.get("breaker") == "open"
        for tenant in payload.get("tenants", {}).values()
        for cube in tenant.get("cubes", {}).values()
    )
    return ProbeResult(
        healthy=status in ("ok", "degraded"),
        breaker_open=breaker_open,
        detail=f"status={status}",
    )


class FailoverController:
    """Promotes a caught-up candidate when the primary stays down.

    ``candidates`` expose ``promote()`` and a ``replication_state()``
    whose ``applied_seq`` orders catch-up (a replica ``ServingHub``
    satisfies this).  Probing and promotion run under one lock; the
    promotion itself is delegated to the candidate, which is
    responsible for its own 503-during-promotion window.
    """

    def __init__(
        self,
        probe: Callable[[], ProbeResult],
        candidates: Sequence[Any],
        threshold: int = 3,
        interval_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
        fail_on_breaker_open: bool = True,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self._probe = probe
        self._candidates = list(candidates)
        self._threshold = threshold
        self._interval_s = interval_s
        self._clock = clock
        self._fail_on_breaker_open = fail_on_breaker_open
        self._lock = threading.Lock()
        self._consecutive_failures = 0  # guarded-by: _lock
        self._timer: Optional[threading.Timer] = None  # guarded-by: _lock
        self._stopped = False  # guarded-by: _lock
        self.promoted: Optional[object] = None  # guarded-by: _lock
        self.promotion_s: Optional[float] = None  # guarded-by: _lock
        self.events: List[Dict[str, object]] = []  # guarded-by: _lock

    # ------------------------------------------------------------------

    def tick(self) -> Optional[object]:
        """One probe/decide step.  Returns the promoted candidate on
        the tick that fires promotion, else ``None``."""
        result = self._probe()
        failed = (not result.healthy) or (
            self._fail_on_breaker_open and result.breaker_open
        )
        with self._lock:
            if self.promoted is not None:
                return None
            now = self._clock()
            if not failed:
                self._consecutive_failures = 0
                return None
            self._consecutive_failures += 1
            self.events.append(
                {
                    "t": now,
                    "event": "probe_failed",
                    "failures": self._consecutive_failures,
                    "detail": result.detail,
                }
            )
            if self._consecutive_failures < self._threshold:
                return None
            candidate = self._pick_candidate()
            if candidate is None:
                self.events.append({"t": now, "event": "no_candidate"})
                return None
            self.promoted = candidate
        # Promote outside the lock: promotion replays / scans the
        # candidate arena and must not block concurrent snapshot()s.
        start = self._clock()
        candidate.promote()
        elapsed = self._clock() - start
        with self._lock:
            self.promotion_s = elapsed
            self.events.append(
                {
                    "t": self._clock(),
                    "event": "promoted",
                    "promotion_s": elapsed,
                }
            )
        return candidate

    def _pick_candidate(self) -> Optional[Any]:  # lint: holds=_lock
        best: Optional[Any] = None
        best_seq = -1
        for cand in self._candidates:
            try:
                seq = int(cand.replication_state().get("applied_seq", -1))
            except Exception:  # noqa: BLE001 — a dead candidate just loses
                continue
            if seq > best_seq:
                best, best_seq = cand, seq
        return best

    # ------------------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            self._stopped = False
        self._schedule()

    def _schedule(self) -> None:
        with self._lock:
            if self._stopped or self.promoted is not None:
                return
            timer = threading.Timer(self._interval_s, self._timer_tick)
            timer.daemon = True
            self._timer = timer
        timer.start()

    def _timer_tick(self) -> None:
        from ..obs.tracer import get_tracer

        # Timer threads have no trace context; root explicitly.
        with get_tracer().span("failover.tick", parent=None):
            try:
                self.tick()
            finally:
                self._schedule()

    def stop(self) -> None:
        with self._lock:
            self._stopped = True
            timer = self._timer
            self._timer = None
        if timer is not None:
            timer.cancel()

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "consecutive_failures": self._consecutive_failures,
                "threshold": self._threshold,
                "promoted": self.promoted is not None,
                "promotion_s": self.promotion_s,
                "events": list(self.events),
            }
