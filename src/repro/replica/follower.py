"""Follower-side replay of shipped journal groups.

A follower never applies bytes any way the primary's own crash
recovery wouldn't: each shipped group's record bytes are ingested into
the follower's journal and replayed through the existing
:meth:`JournaledDevice.recover` path.  A follower arena is therefore
always bit-identical to some committed prefix of the primary — the
same invariant the crash matrix certifies for a restarted primary.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np
import numpy.typing as npt

from ..storage.block_device import BlockDevice
from ..storage.journal import JournaledDevice, RecoveryReport
from .frames import FRAME_GROUP, FRAME_HEARTBEAT, Frame, FrameDecoder

FloatArray = npt.NDArray[np.float64]


class ReplicaGapError(RuntimeError):
    """A frame arrived whose seq is not contiguous with the applied
    prefix — the follower missed groups and must re-snapshot."""

    def __init__(self, applied_seq: int, got_seq: int) -> None:
        super().__init__(
            f"replication gap: applied up to {applied_seq}, got {got_seq}"
        )
        self.applied_seq = applied_seq
        self.got_seq = got_seq


class FollowerEngine:
    """Replays shipped groups into an arena.

    Either pass a raw ``device`` (a private arena is journaled around
    it) or an existing ``journaled`` device (a replica hub wraps its
    own arena).  Thread-safe: the poller thread feeds while probes read
    counters.
    """

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        *,
        block_slots: Optional[int] = None,
        journaled: Optional[JournaledDevice] = None,
    ) -> None:
        if (device is None) == (journaled is None):
            raise ValueError("pass exactly one of device= or journaled=")
        if journaled is None:
            assert device is not None
            journaled = JournaledDevice(device)
        self.device = journaled
        self._block_slots = block_slots
        self._lock = threading.Lock()
        self.decoder = FrameDecoder()  # guarded-by: _lock
        truncated_upto = self.device.journal.truncated_upto
        self.applied_seq = truncated_upto  # guarded-by: _lock
        self.groups_applied = 0  # guarded-by: _lock
        self.records_applied = 0  # guarded-by: _lock
        self.duplicates_skipped = 0  # guarded-by: _lock
        self.heartbeat_seq = self.applied_seq  # guarded-by: _lock
        self.finalized = False  # guarded-by: _lock

    # ------------------------------------------------------------------

    def feed(self, data: bytes) -> List[int]:
        """Decode a byte chunk and apply the complete frames it
        finishes.  Returns the block ids rewritten by replay (for
        buffer-pool invalidation).  Raises :class:`FrameError` on
        stream corruption and :class:`ReplicaGapError` on a seq gap."""
        with self._lock:
            frames = self.decoder.feed(data)
            return self._apply_frames(frames)

    def apply_frames(self, frames: List[Frame]) -> List[int]:
        with self._lock:
            return self._apply_frames(frames)

    # lint: holds=_lock
    def _apply_frames(self, frames: List[Frame]) -> List[int]:
        touched: List[int] = []
        for frame in frames:
            if frame.kind == FRAME_HEARTBEAT:
                self.heartbeat_seq = max(self.heartbeat_seq, frame.seq)
                continue
            if frame.kind != FRAME_GROUP:
                continue
            if frame.seq <= self.applied_seq:
                self.duplicates_skipped += 1
                continue
            if frame.seq != self.applied_seq + 1:
                raise ReplicaGapError(self.applied_seq, frame.seq)
            self.device.journal.ingest(frame.payload)
            report = self.device.recover(scan=False)
            if (
                report.replayed_groups != 1
                or report.last_committed_seq != frame.seq
            ):
                raise ReplicaGapError(self.applied_seq, frame.seq)
            touched.extend(report.replayed_block_ids)
            self.applied_seq = frame.seq
            self.heartbeat_seq = max(self.heartbeat_seq, frame.seq)
            self.groups_applied += 1
            self.records_applied += report.replayed_records
        return touched

    # ------------------------------------------------------------------

    def install_snapshot(self, blocks: FloatArray, last_seq: int) -> None:
        """Adopt a full arena image at ``last_seq``: restore the block
        grid, reset the journal horizon, and drop any buffered partial
        frame — the stream resumes at ``last_seq + 1``."""
        with self._lock:
            # lint: uncounted (bulk snapshot install, not per-block I/O)
            self.device.restore_blocks(blocks)
            self.device.journal.reset_to(last_seq)
            self.decoder.discard_tail()
            self.applied_seq = last_seq
            self.heartbeat_seq = max(self.heartbeat_seq, last_seq)

    def finalize(self) -> RecoveryReport:
        """Promotion step: discard any torn tail left by a dead
        primary, replay anything ingested-but-unapplied, and run the
        full checksum scan.  A clean report certifies the arena as a
        committed prefix of the old primary."""
        with self._lock:
            self.decoder.discard_tail()
            report = self.device.recover(scan=True)
            self.applied_seq = max(self.applied_seq, report.last_committed_seq)
            self.finalized = True
            return report

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "applied_seq": self.applied_seq,
                "heartbeat_seq": self.heartbeat_seq,
                "groups_applied": self.groups_applied,
                "records_applied": self.records_applied,
                "duplicates_skipped": self.duplicates_skipped,
                "pending_bytes": self.decoder.pending_bytes,
                "finalized": self.finalized,
            }
