"""Replica-side HTTP poller.

Connects a replica :class:`~repro.server.hub.ServingHub` to a
primary's ``/replica/*`` endpoints: bootstrap with a full snapshot,
then poll the frame stream from the last applied seq.  Resumable by
construction — the ``after`` cursor is the follower's own applied seq,
so a restarted or reconnecting replica picks up exactly where its
arena is, and a retention-window gap triggers a fresh snapshot.
"""

from __future__ import annotations

import base64
import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .follower import ReplicaGapError
from .frames import FrameError


class ReplicationClient:
    """Polls a primary and applies shipped groups to ``hub``.

    The hub side of the contract: ``hub.follower`` is a
    :class:`FollowerEngine`, ``hub._replica_apply(data)`` feeds bytes
    under the hub's locks, ``hub._install_snapshot(...)`` adopts a full
    image, and ``hub._apply_state(state, version)`` refreshes tenant /
    cube provisioning.
    """

    def __init__(
        self,
        hub: Any,
        primary_url: str,
        api_key: str,
        follower_id: str = "replica",
        poll_interval_s: float = 0.1,
        timeout_s: float = 2.0,
    ) -> None:
        self._hub = hub
        self._base = primary_url.rstrip("/")
        self._key = api_key
        self.follower_id = follower_id
        self._poll_interval_s = poll_interval_s
        self._timeout_s = timeout_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.state_version = -1
        self.primary_next_seq = 0
        self.polls = 0
        self.poll_errors = 0
        self.gaps_resynced = 0
        self.last_success_monotonic = 0.0

    # ------------------------------------------------------------------

    def _get(
        self, path: str, binary: bool = False
    ) -> Tuple[Any, Dict[str, str]]:
        req = urllib.request.Request(
            self._base + path, headers={"X-API-Key": self._key}
        )
        with urllib.request.urlopen(req, timeout=self._timeout_s) as resp:
            body = resp.read()
            headers = dict(resp.headers.items())
        if binary:
            return body, headers
        return json.loads(body), headers

    # ------------------------------------------------------------------

    def fetch_snapshot(self) -> None:
        """Bootstrap: adopt the primary's full arena image and hub
        state.  Called once at replica start and again on any gap."""
        payload, _ = self._get("/replica/snapshot")
        flat = np.frombuffer(
            base64.b64decode(payload["blocks"]), dtype=np.float64
        )
        grid = (payload["num_blocks"], payload["block_slots"])
        blocks = flat.reshape(grid).copy()
        self._hub._install_snapshot(
            blocks, int(payload["last_seq"]), payload["state"]
        )
        self.state_version = int(payload["state_version"])
        self.primary_next_seq = int(payload["last_seq"]) + 1
        self.last_success_monotonic = time.monotonic()

    def poll_once(self) -> int:
        """One poll round-trip.  Returns the number of payload bytes
        applied.  Raises on transport errors (caller counts them)."""
        # read under the follower lock: the apply path mutates
        # applied_seq concurrently and a torn cursor would re-request
        # (or skip) groups
        after = int(self._hub.follower.snapshot()["applied_seq"])
        path = (
            f"/replica/stream?after={after}"
            f"&follower={self.follower_id}"
            f"&state_version={self.state_version}"
        )
        body, headers = self._get(path, binary=True)
        self.polls += 1
        if headers.get("X-Repro-Snapshot-Needed") == "1":
            self.gaps_resynced += 1
            self.fetch_snapshot()
            return 0
        seen_version = int(headers.get("X-Repro-State-Version", -1))
        if seen_version != self.state_version and seen_version >= 0:
            state, _ = self._get("/replica/state")
            self._hub._apply_state(state["state"], int(state["version"]))
            self.state_version = int(state["version"])
        self.primary_next_seq = int(
            headers.get("X-Repro-Next-Seq", self.primary_next_seq)
        )
        if body:
            try:
                self._hub._replica_apply(body)
            except (ReplicaGapError, FrameError):
                self.gaps_resynced += 1
                self.fetch_snapshot()
                return 0
        self.last_success_monotonic = time.monotonic()
        return len(body)

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-replica-poll", daemon=True
        )
        self._thread.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout_s)
        self._thread = None

    def _run(self) -> None:
        from ..obs.tracer import get_tracer

        # Thread entry point: root a fresh trace rather than inheriting
        # whichever request span happened to start the client.
        with get_tracer().span("replica.poll_loop", parent=None):
            while not self._stop.is_set():
                try:
                    self.poll_once()
                except (urllib.error.URLError, OSError, ValueError):
                    self.poll_errors += 1
                self._stop.wait(self._poll_interval_s)

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "primary": self._base,
            "follower_id": self.follower_id,
            "state_version": self.state_version,
            "primary_next_seq": self.primary_next_seq,
            "polls": self.polls,
            "poll_errors": self.poll_errors,
            "gaps_resynced": self.gaps_resynced,
            "age_s": (
                time.monotonic() - self.last_success_monotonic
                if self.last_success_monotonic
                else -1.0
            ),
        }
