"""Journal-shipping replication (ROADMAP item 3).

SHIFT-SPLIT batch updates touch an exactly-planned set of coefficient
tiles, so the :class:`~repro.storage.journal.WriteAheadJournal` group
records *are* a minimal replication stream: shipping them costs I/O
proportional to coefficient change, not cube size.

* :mod:`repro.replica.frames` — CRC'd, length-prefixed wire frames with
  torn-tail detection (the stream analogue of the journal's own record
  framing).
* :mod:`repro.replica.shipper` — primary-side tap on the journal's
  ``on_commit`` observer; retains recent frames so followers resume
  from their last acked group without a full snapshot.
* :mod:`repro.replica.follower` — replays shipped groups through the
  existing :meth:`JournaledDevice.recover` path, so a follower arena is
  always bit-identical to some committed prefix of the primary.
* :mod:`repro.replica.client` — HTTP poller wiring a replica
  :class:`~repro.server.hub.ServingHub` to a primary's ``/replica/*``
  endpoints.
* :mod:`repro.replica.controller` — health-probe-driven failover:
  promotes the most caught-up follower when the primary dies or its
  breaker opens.
"""

from .frames import (
    FRAME_GROUP,
    FRAME_HEARTBEAT,
    Frame,
    FrameDecoder,
    FrameError,
    encode_frame,
)
from .shipper import JournalShipper
from .follower import FollowerEngine, ReplicaGapError
from .client import ReplicationClient
from .controller import FailoverController, ProbeResult, http_health_probe

__all__ = [
    "FRAME_GROUP",
    "FRAME_HEARTBEAT",
    "Frame",
    "FrameDecoder",
    "FrameError",
    "encode_frame",
    "JournalShipper",
    "FollowerEngine",
    "ReplicaGapError",
    "ReplicationClient",
    "FailoverController",
    "ProbeResult",
    "http_health_probe",
]
