"""Hierarchical tracing with per-span I/O attribution.

Every claim in the paper is an I/O-count claim, and after the service
and kernel layers the repo has several *places* where those I/Os can
happen — plan lookup, chunk DWT, SHIFT scatter, buffer-pool faults,
query execution on worker threads.  This module attributes them: a
:class:`Tracer` produces hierarchical :class:`Span`\\ s (context
managers, propagated through a :mod:`contextvars` variable so nested
calls attach to the right parent and worker threads can attach
explicitly), and the instrumented storage layers *charge* each I/O to
the innermost active span of the current thread.  Because charging
mirrors — never replaces — the shared
:class:`~repro.storage.iostats.IOStats` bumps, enabling tracing cannot
change any counter the experiments report; and because charges that
occur outside any span land in the tracer's ``orphan_io`` bucket,
attribution is *lossless*: summing every span's ``io`` plus
``orphan_io`` reproduces the global ``IOStats`` delta exactly.

Tracing is **off by default** and zero-cost when off: the module-level
tracer is a shared :class:`NullTracer` whose ``span(...)`` returns one
reusable no-op context manager and whose ``charge`` is a pass; the
instrumentation points pay one global load and a ``None`` check per
I/O.  Enable it for a scope with :func:`tracing`::

    from repro.obs import tracing

    with tracing() as tracer:
        transform_standard_chunked(store, data, (8, 8))
    receipt = io_receipt(tracer.spans(), orphan_io=tracer.orphan_io)

Finished spans land in a bounded ring-buffer :class:`TraceStore`;
exporters for Chrome trace-event JSON and Prometheus text live in
:mod:`repro.obs.exporters`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "IO_FIELDS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceStore",
    "Tracer",
    "charge",
    "get_tracer",
    "set_tracer",
    "span_record",
    "tracing",
    "zero_io",
]

#: Counter fields mirrored from :class:`~repro.storage.iostats.IOStats`.
IO_FIELDS: Tuple[str, ...] = (
    "block_reads",
    "block_writes",
    "coefficient_reads",
    "coefficient_writes",
    "cache_hits",
    "cache_misses",
    "journal_writes",
)


def zero_io() -> Dict[str, int]:
    """A fresh all-zero I/O attribution dict."""
    return dict.fromkeys(IO_FIELDS, 0)


_UNSET = object()  # sentinel: "parent not given, use the contextvar"


class Span:
    """One timed, attributed operation.

    ``io`` holds the I/O counters charged while this span was the
    innermost active span of its thread (*self* cost — descendants
    charge their own spans).  ``attrs`` is free-form (tile ids, plan
    cache hit/miss, dedup ratio, queue wait...).  Spans are created by
    :meth:`Tracer.span`, never directly.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "thread_id",
        "attrs",
        "io",
    )

    def __init__(
        self, name: str, span_id: int, parent_id: Optional[int]
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = 0.0
        self.end_s = 0.0
        self.thread_id = 0
        self.attrs: Dict[str, Any] = {}
        self.io = zero_io()

    @property
    def wall_s(self) -> float:
        """Wall time of the span (0.0 while still open)."""
        return max(0.0, self.end_s - self.start_s)

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (mid-flight or at exit)."""
        self.attrs.update(attrs)

    @property
    def block_ios(self) -> int:
        return self.io["block_reads"] + self.io["block_writes"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, wall={self.wall_s:.6f}s, "
            f"io={self.io})"
        )


def span_record(span: Span) -> Dict[str, Any]:
    """Serialise a finished span to a picklable plain dict.

    The wire format forked scatter workers ship over their results
    queue; :meth:`Tracer.absorb` is the inverse.  Ids are the
    recording tracer's — the absorbing tracer remaps them into its own
    id space.
    """
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "thread_id": span.thread_id,
        "attrs": dict(span.attrs),
        "io": dict(span.io),
    }


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    wall_s = 0.0
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        pass


class _NullSpanContext:
    """Reusable no-op context manager (the zero-cost-when-off path)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Tracer that records nothing; installed by default.

    Every method is a cheap no-op so instrumentation points can call
    unconditionally.  A single shared instance (:data:`NULL_TRACER`)
    is enough — it holds no state.
    """

    __slots__ = ()

    enabled = False
    orphan_io: Dict[str, int] = {}

    def span(self, name: str, parent: Any = None, **attrs: Any):
        return _NULL_SPAN_CONTEXT

    def charge(self, field: str, amount: int = 1) -> None:
        pass

    def current_span(self) -> None:
        return None

    def spans(self) -> List[Span]:
        return []


NULL_TRACER = NullTracer()


class TraceStore:
    """Bounded, thread-safe ring buffer of finished spans.

    Memory stays bounded no matter how long tracing runs: once
    ``max_spans`` spans are held, each new span evicts the oldest and
    ``dropped`` counts the loss (exporters surface it so a truncated
    trace is never mistaken for a complete one).
    """

    def __init__(self, max_spans: int = 65536) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._max_spans = max_spans
        self._spans: "deque[Span]" = deque(maxlen=max_spans)  # guarded-by: _lock
        self._lock = threading.Lock()
        self.dropped = 0  # guarded-by: _lock

    @property
    def max_spans(self) -> int:
        return self._max_spans

    def add(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._max_spans:
                self.dropped += 1
            self._spans.append(span)

    def spans(self) -> List[Span]:
        """Snapshot of the held spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def note_dropped(self, count: int) -> None:
        """Account spans lost outside this store (e.g. a forked
        worker's ring overflowed before its spans were shipped)."""
        if count:
            with self._lock:
                self.dropped += count

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class _SpanContext:
    """Context manager binding one span to the current thread context."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_span", "_token")

    def __init__(
        self, tracer: "Tracer", name: str, parent: Any, attrs: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Optional[Span] = None
        self._token = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = self._parent
        if parent is _UNSET:
            parent = tracer._current.get()
        span = Span(
            self._name,
            next(tracer._ids),
            parent.span_id if parent is not None else None,
        )
        if self._attrs:
            span.attrs.update(self._attrs)
        span.thread_id = threading.get_ident()
        self._span = span
        self._token = tracer._current.set(span)
        span.start_s = time.perf_counter()
        return span

    def __exit__(self, *exc_info) -> bool:
        span = self._span
        assert span is not None
        span.end_s = time.perf_counter()
        self._tracer._current.reset(self._token)
        self._tracer.store.add(span)
        return False


class Tracer:
    """Thread-safe producer of hierarchical, I/O-attributed spans.

    Span nesting follows a :class:`~contextvars.ContextVar`: within one
    thread, ``tracer.span(...)`` parents to the innermost open span
    automatically.  Threads start with an empty context, so code that
    fans work out to a pool passes the parent explicitly::

        root = tracer.current_span()
        pool.submit(lambda: work_under(tracer.span("task", parent=root)))

    ``charge`` attributes one mirrored I/O counter bump to the current
    span — or to ``orphan_io`` when no span is open on the charging
    thread, so no I/O is ever silently lost from a trace.  Charges are
    not locked per span: every concurrent charging path in the library
    already serialises device access (the sharded pool's I/O lock), and
    spans are thread-confined by construction.
    """

    enabled = True

    def __init__(self, max_spans: int = 65536) -> None:
        self.store = TraceStore(max_spans)
        self._ids = itertools.count(1)
        self._current: "ContextVar[Optional[Span]]" = ContextVar(
            "repro_obs_span", default=None
        )
        self._orphan_lock = threading.Lock()
        self.orphan_io = zero_io()  # guarded-by: _orphan_lock

    def span(self, name: str, parent: Any = _UNSET, **attrs: Any):
        """Open a span (use as a context manager).

        ``parent`` defaults to the calling thread's innermost open
        span; pass a :class:`Span` (or ``None`` for a root) to attach
        across threads.
        """
        return _SpanContext(self, name, parent, attrs)

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread context."""
        return self._current.get()

    def charge(self, field: str, amount: int = 1) -> None:
        """Attribute one mirrored I/O counter bump (see class docs)."""
        span = self._current.get()
        if span is not None:
            span.io[field] += amount
        else:
            with self._orphan_lock:
                self.orphan_io[field] += amount

    def spans(self) -> List[Span]:
        """Snapshot of the finished spans, oldest first."""
        return self.store.spans()

    def absorb(
        self,
        records: Sequence[Dict[str, Any]],
        orphan_io: Optional[Dict[str, int]] = None,
        parent: Optional[Span] = None,
        dropped: int = 0,
    ) -> List[Span]:
        """Merge spans recorded by *another* tracer into this trace.

        ``records`` are :func:`span_record` dicts (typically shipped
        back from a forked worker's private tracer).  Every span gets
        a fresh id from this tracer's counter — two processes both
        count ids from 1, so the foreign ids are remapped, preserving
        the foreign parent/child links; foreign roots are re-parented
        under ``parent`` (e.g. the driver's ``transform.procpool``
        span).  The foreign tracer's ``orphan_io`` is folded into this
        tracer's orphan bucket and ``dropped`` into the store's drop
        count, so the lossless invariant — merged span charges plus
        orphans equal the global ``IOStats`` delta — survives the
        process boundary.  Returns the absorbed spans.
        """
        mapping: Dict[int, Span] = {}
        staged: List[Tuple[Span, Optional[int]]] = []
        for record in records:
            span = Span(record["name"], next(self._ids), None)
            span.start_s = float(record.get("start_s", 0.0))
            span.end_s = float(record.get("end_s", 0.0))
            span.thread_id = int(record.get("thread_id", 0))
            span.attrs.update(record.get("attrs") or {})
            io = record.get("io") or {}
            for field in IO_FIELDS:
                span.io[field] = int(io.get(field, 0))
            mapping[int(record["span_id"])] = span
            staged.append((span, record.get("parent_id")))
        parent_id = parent.span_id if parent is not None else None
        absorbed: List[Span] = []
        for span, foreign_parent in staged:
            mapped = (
                mapping.get(int(foreign_parent))
                if foreign_parent is not None
                else None
            )
            span.parent_id = (
                mapped.span_id if mapped is not None else parent_id
            )
            self.store.add(span)
            absorbed.append(span)
        if orphan_io:
            with self._orphan_lock:
                for field in IO_FIELDS:
                    self.orphan_io[field] += int(orphan_io.get(field, 0))
        self.store.note_dropped(dropped)
        return absorbed


# ----------------------------------------------------------------------
# module-level tracer registry (what the instrumentation points consult)
# ----------------------------------------------------------------------

_active: Optional[Tracer] = None


def get_tracer():
    """The installed tracer (:data:`NULL_TRACER` when tracing is off)."""
    tracer = _active
    return tracer if tracer is not None else NULL_TRACER


def set_tracer(tracer) -> Optional[Tracer]:
    """Install ``tracer`` globally; returns the previously active
    tracer (``None`` when tracing was off).  Passing ``None`` or the
    null tracer turns tracing off."""
    global _active
    previous = _active
    if tracer is None or isinstance(tracer, NullTracer):
        _active = None
    else:
        _active = tracer
    return previous


@contextmanager
def tracing(
    max_spans: int = 65536, tracer: Optional[Tracer] = None
) -> Iterator[Tracer]:
    """Scope with tracing enabled; restores the previous tracer after.

    Yields the active :class:`Tracer` (a fresh one unless given).
    """
    active = tracer if tracer is not None else Tracer(max_spans=max_spans)
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)


def charge(field: str, amount: int = 1) -> None:
    """Hot-path hook for the storage layers: mirror one I/O counter
    bump into the active trace (a no-op costing one global load and a
    ``None`` check when tracing is off)."""
    tracer = _active
    if tracer is not None:
        tracer.charge(field, amount)
