"""Always-on flight recorder for the serving path.

Full tracing answers "where did the I/O go" but costs memory and is
usually off in production.  The flight recorder is the complement: a
bounded, always-on structure that keeps only the receipts an operator
asks for first when paged — the *slowest* requests, the *degraded*
answers (deadline/breaker fallbacks, HTTP 206) and the *faulted* ones
(HTTP 5xx / query errors).  Constant memory no matter how long the
hub serves; exposed live through ``/debug/queries``.

A receipt is whatever dict the serving app hands in — typically the
same record it appends to the request log (trace id, tenant, cube,
status, wall time, deadline slack, I/O receipt), so a slow entry here
can be joined back to the full request log and trace by trace id.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import List, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded rings of the slowest / degraded / faulted receipts.

    ``capacity`` bounds each of the three retained sets
    independently.  The slowest set is a min-heap keyed on the
    receipt's ``wall_s``: once full, a new receipt must beat the
    fastest retained one to enter (the fastest is evicted, counted in
    ``evicted``).  The degraded and faulted sets are most-recent
    rings.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        # entries are (wall_s, seq, receipt); seq breaks wall ties so
        # receipts (plain dicts) are never compared
        self._slow: List[tuple] = []  # guarded-by: _lock
        self._degraded: "deque[dict]" = deque(maxlen=capacity)
        self._faulted: "deque[dict]" = deque(maxlen=capacity)
        self._seq = 0  # guarded-by: _lock
        self.seen = 0  # guarded-by: _lock
        self.evicted = 0  # guarded-by: _lock

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, receipt: dict) -> None:
        """Consider one request receipt for retention."""
        wall_s = float(receipt.get("wall_s", 0.0))
        code = int(receipt.get("code", 0))
        query_status = receipt.get("status", "")
        faulted = code >= 500 or query_status == "error"
        degraded = not faulted and (
            code == 206 or query_status in ("degraded", "timeout")
        )
        with self._lock:
            self.seen += 1
            self._seq += 1
            entry = (wall_s, self._seq, receipt)
            if len(self._slow) < self._capacity:
                heapq.heappush(self._slow, entry)
            elif wall_s > self._slow[0][0]:
                heapq.heapreplace(self._slow, entry)
                self.evicted += 1
            else:
                self.evicted += 1
            if faulted:
                self._faulted.append(receipt)
            elif degraded:
                self._degraded.append(receipt)

    def snapshot(self, tenant: Optional[str] = None) -> dict:
        """JSON-ready state: slowest (descending), degraded and
        faulted (newest last).  ``tenant`` filters every list."""
        with self._lock:
            slow = [
                receipt
                for __, __, receipt in sorted(
                    self._slow, key=lambda entry: -entry[0]
                )
            ]
            degraded = list(self._degraded)
            faulted = list(self._faulted)
            seen = self.seen
            evicted = self.evicted
        if tenant is not None:
            slow = [r for r in slow if r.get("tenant") == tenant]
            degraded = [r for r in degraded if r.get("tenant") == tenant]
            faulted = [r for r in faulted if r.get("tenant") == tenant]
        return {
            "capacity": self._capacity,
            "seen": seen,
            "evicted": evicted,
            "slowest": slow,
            "degraded": degraded,
            "faulted": faulted,
        }

    def clear(self) -> None:
        with self._lock:
            self._slow.clear()
            self._degraded.clear()
            self._faulted.clear()
            self.seen = 0
            self.evicted = 0
