"""Cross-layer observability: tracing, I/O attribution, exporters.

The paper's currency is I/O counts; this package says *where they
went*.  A :class:`~repro.obs.tracer.Tracer` produces hierarchical
spans that each capture wall time, free-form attributes and the
:class:`~repro.storage.iostats.IOStats` counters charged while the
span was active; the storage, kernel, transform and service layers
are instrumented to open spans and charge I/Os.  Tracing is off by
default and zero-cost when off — enabling it never changes any
``IOStats`` value.

Typical use::

    from repro.obs import tracing, io_receipt, to_chrome_trace

    with tracing() as tracer:
        engine.execute_batch(queries)

    receipt = io_receipt(tracer.spans(), orphan_io=tracer.orphan_io)
    json.dump(to_chrome_trace(tracer.spans()), open("trace.json", "w"))

See ``docs/observability.md`` for the span taxonomy and exporter
formats.
"""

from repro.obs.exporters import (
    io_receipt,
    query_receipts,
    to_chrome_trace,
    to_prometheus,
)
from repro.obs.tracer import (
    IO_FIELDS,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceStore,
    Tracer,
    charge,
    get_tracer,
    set_tracer,
    tracing,
    zero_io,
)

__all__ = [
    "IO_FIELDS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceStore",
    "Tracer",
    "charge",
    "get_tracer",
    "io_receipt",
    "query_receipts",
    "set_tracer",
    "to_chrome_trace",
    "to_prometheus",
    "tracing",
    "zero_io",
]
