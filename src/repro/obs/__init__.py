"""Cross-layer observability: tracing, I/O attribution, exporters.

The paper's currency is I/O counts; this package says *where they
went*.  A :class:`~repro.obs.tracer.Tracer` produces hierarchical
spans that each capture wall time, free-form attributes and the
:class:`~repro.storage.iostats.IOStats` counters charged while the
span was active; the storage, kernel, transform and service layers
are instrumented to open spans and charge I/Os.  Tracing is off by
default and zero-cost when off — enabling it never changes any
``IOStats`` value.

The serving-path companions:

* :mod:`repro.obs.reqlog` — structured JSON request logs plus W3C
  ``traceparent`` propagation helpers;
* :mod:`repro.obs.flightrec` — the bounded always-on flight recorder
  behind ``/debug/queries``;
* :mod:`repro.obs.heat` — per-tile read/write heat attributed by
  tenant and query class (the input ROADMAP item 5 consumes).

Typical use::

    from repro.obs import tracing, io_receipt, to_chrome_trace

    with tracing() as tracer:
        engine.execute_batch(queries)

    receipt = io_receipt(tracer.spans(), orphan_io=tracer.orphan_io)
    json.dump(to_chrome_trace(tracer.spans()), open("trace.json", "w"))

See ``docs/observability.md`` for the span taxonomy and exporter
formats.
"""

from repro.obs.exporters import (
    heat_to_prometheus,
    io_receipt,
    query_receipts,
    to_chrome_trace,
    to_prometheus,
)
from repro.obs.flightrec import FlightRecorder
from repro.obs.heat import (
    HeatRecorder,
    get_heat,
    heat_context,
    set_heat,
    touch_read,
    touch_write,
)
from repro.obs.reqlog import (
    RequestLog,
    make_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.tracer import (
    IO_FIELDS,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceStore,
    Tracer,
    charge,
    get_tracer,
    set_tracer,
    span_record,
    tracing,
    zero_io,
)

__all__ = [
    "IO_FIELDS",
    "NULL_TRACER",
    "FlightRecorder",
    "HeatRecorder",
    "NullTracer",
    "RequestLog",
    "Span",
    "TraceStore",
    "Tracer",
    "charge",
    "get_heat",
    "get_tracer",
    "heat_context",
    "heat_to_prometheus",
    "io_receipt",
    "make_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "query_receipts",
    "set_heat",
    "set_tracer",
    "span_record",
    "to_chrome_trace",
    "to_prometheus",
    "touch_read",
    "touch_write",
    "tracing",
    "zero_io",
]
