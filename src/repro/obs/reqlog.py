"""Structured JSON request logs and W3C ``traceparent`` propagation.

The serving app records one structured entry per HTTP request —
tenant, cube, cut, status, deadline slack, and the arena I/O receipt —
into a bounded in-memory :class:`RequestLog` ring (always on, constant
memory) and optionally mirrors each entry as a JSON line to a stream
(``python -m repro.server --reqlog`` wires stderr).

Trace ids follow the W3C Trace Context ``traceparent`` header
(``00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>``): a request
carrying the header continues the caller's trace id; one without gets
a fresh id.  Either way the response carries a ``traceparent`` whose
span-id names the server's request span, so a client can stitch its
own spans to the server-side trace and to the request-log entry (both
record the trace id).
"""

from __future__ import annotations

import json
import re
import secrets
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = [
    "RequestLog",
    "make_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
]

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, str]]:
    """``(trace_id, parent_span_id)`` from a ``traceparent`` header.

    Returns ``None`` for a missing or malformed header and for the
    all-zero trace/span ids the spec declares invalid — the server
    then starts a fresh trace rather than propagating garbage.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id = match.group("trace_id")
    span_id = match.group("span_id")
    # future versions parse leniently, but "ff" is explicitly invalid
    if match.group("version") == "ff":
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


def make_traceparent(
    trace_id: str, span_id: str, sampled: bool = True
) -> str:
    """Render a version-00 ``traceparent`` header value."""
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return secrets.token_hex(8)


class RequestLog:
    """Bounded, thread-safe ring buffer of per-request log records.

    Each record is a plain JSON-ready dict; :meth:`record` stamps the
    wall-clock ``ts`` and appends.  Once ``capacity`` records are held
    the oldest is evicted (``dropped`` counts the loss).  When
    ``stream`` is set, every record is also written as one JSON line —
    the machine-readable access log.
    """

    def __init__(self, capacity: int = 512, stream=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._records: "deque[dict]" = deque(maxlen=capacity)  # guarded-by: _lock
        self._lock = threading.Lock()
        self.dropped = 0  # guarded-by: _lock
        self.stream = stream

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, **fields) -> dict:
        """Append one record (and emit it to ``stream`` when set)."""
        entry: Dict[str, object] = {"ts": time.time()}
        entry.update(fields)
        with self._lock:
            if len(self._records) == self._capacity:
                self.dropped += 1
            self._records.append(entry)
        stream = self.stream
        if stream is not None:
            try:
                stream.write(json.dumps(entry) + "\n")
            except (ValueError, OSError):  # closed stream: keep serving
                pass
        return entry

    def records(
        self, tenant: Optional[str] = None, limit: Optional[int] = None
    ) -> List[dict]:
        """Snapshot, oldest first; ``tenant`` filters, ``limit`` keeps
        the newest ``limit`` entries."""
        with self._lock:
            entries = list(self._records)
        if tenant is not None:
            entries = [
                entry for entry in entries if entry.get("tenant") == tenant
            ]
        if limit is not None:
            entries = entries[-limit:]
        return entries

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
