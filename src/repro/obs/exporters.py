"""Exporters for traces and metrics.

Three consumers, three formats:

* :func:`to_chrome_trace` — Chrome trace-event JSON (the ``"X"``
  complete-event flavour), loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev, one track per thread, span attributes and
  per-span I/O counters in ``args``;
* :func:`to_prometheus` — Prometheus text exposition rendered from a
  :class:`~repro.service.metrics.MetricsRegistry` (counters, gauges,
  and histograms as summaries);
* :func:`io_receipt` / :func:`query_receipts` — compact per-trace and
  per-query "I/O receipt" dicts used by tests and the benchmark: the
  receipt's ``total`` (spans plus the tracer's ``orphan_io``) equals
  the global :class:`~repro.storage.iostats.IOStats` delta of the
  traced region *exactly*, which is what makes attribution lossless.

Everything here is pure post-processing over finished spans and
metric snapshots — exporting never charges I/O and never mutates the
trace.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.tracer import IO_FIELDS, Span, zero_io

__all__ = [
    "heat_to_prometheus",
    "io_receipt",
    "query_receipts",
    "to_chrome_trace",
    "to_prometheus",
]


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------


def to_chrome_trace(
    spans: Sequence[Span],
    orphan_io: Optional[Dict[str, int]] = None,
    dropped: int = 0,
    process_name: str = "repro",
) -> dict:
    """Render finished spans as a Chrome trace-event JSON object.

    Timestamps are microseconds relative to the earliest span start,
    one ``tid`` track per OS thread.  Load the serialised dict in
    ``chrome://tracing`` or Perfetto.  ``otherData`` carries the
    ring-buffer drop count and unattributed I/O so a truncated or
    partially attributed trace is visible as such.
    """
    epoch = min((span.start_s for span in spans), default=0.0)
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        args = {key: _jsonable(val) for key, val in span.attrs.items()}
        for field in IO_FIELDS:
            count = span.io[field]
            if count:
                args[f"io.{field}"] = count
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start_s - epoch) * 1e6,
                "dur": span.wall_s * 1e6,
                "pid": 1,
                "tid": span.thread_id,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_spans": dropped,
            "orphan_io": dict(orphan_io) if orphan_io else zero_io(),
        },
    }


# ----------------------------------------------------------------------
# I/O receipts
# ----------------------------------------------------------------------


def io_receipt(
    spans: Sequence[Span],
    orphan_io: Optional[Dict[str, int]] = None,
) -> dict:
    """Aggregate a trace into a compact, JSON-friendly I/O receipt.

    ``total`` sums every span's self-attributed I/O plus the
    ``unattributed`` bucket (the tracer's ``orphan_io``); over a fully
    traced region it equals the global ``IOStats`` delta field for
    field.  ``by_name`` breaks the same totals down per span name
    (phase), with span counts and summed wall time.
    """
    total = zero_io()
    by_name: Dict[str, dict] = {}
    for span in spans:
        entry = by_name.get(span.name)
        if entry is None:
            entry = by_name[span.name] = {
                "spans": 0,
                "wall_s": 0.0,
                "io": zero_io(),
            }
        entry["spans"] += 1
        entry["wall_s"] += span.wall_s
        span_io = span.io
        entry_io = entry["io"]
        for field in IO_FIELDS:
            count = span_io[field]
            entry_io[field] += count
            total[field] += count
    unattributed = zero_io()
    if orphan_io:
        for field in IO_FIELDS:
            count = int(orphan_io.get(field, 0))
            unattributed[field] += count
            total[field] += count
    return {
        "spans": len(spans),
        "total": total,
        "unattributed": unattributed,
        "by_name": by_name,
    }


def _cumulative_io(spans: Sequence[Span]) -> Dict[int, Dict[str, int]]:
    """Per-span I/O including every (recorded) descendant's."""
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    cumulative: Dict[int, Dict[str, int]] = {}

    def visit(span: Span) -> Dict[str, int]:
        cached = cumulative.get(span.span_id)
        if cached is not None:
            return cached
        io = dict(span.io)
        for child in children.get(span.span_id, ()):
            child_io = visit(child)
            for field in IO_FIELDS:
                io[field] += child_io[field]
        cumulative[span.span_id] = io
        return io

    for span in spans:
        visit(span)
    return cumulative


def query_receipts(
    spans: Sequence[Span],
    names: Iterable[str] = ("query", "naive.query"),
) -> List[dict]:
    """Per-query receipts: one entry per query span, in start order.

    Each receipt carries the query span's *cumulative* I/O (its own
    charges plus every recorded descendant's — pool faults, evictions
    and flushes that happened while serving it), its wall time, and
    the span attributes (query kind, admission wait, status).
    """
    wanted = set(names)
    cumulative = _cumulative_io(spans)
    receipts = []
    for span in sorted(spans, key=lambda s: s.start_s):
        if span.name not in wanted:
            continue
        receipts.append(
            {
                "name": span.name,
                "wall_s": span.wall_s,
                "io": cumulative[span.span_id],
                "attrs": {
                    key: _jsonable(val) for key, val in span.attrs.items()
                },
            }
        )
    return receipts


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _split_labels(name: str) -> tuple:
    """Split ``name{k="v"}`` into (base, label-suffix-or-empty)."""
    brace = name.find("{")
    if brace < 0:
        return name, ""
    return name[:brace], name[brace:]


def _metric_name(base: str, namespace: str) -> str:
    base = _NAME_SANITIZE.sub("_", base)
    if namespace:
        return f"{namespace}_{base}"
    return base


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def to_prometheus(metrics, namespace: str = "repro") -> str:
    """Render a metrics registry (or its ``snapshot()`` dict) as
    Prometheus text exposition (version 0.0.4).

    Counters and gauges map directly (label suffixes produced by
    labelled metrics pass through); histograms are rendered as
    summaries with ``quantile`` labels plus ``_sum``/``_count``.
    """
    snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    lines: List[str] = []
    typed: set = set()

    def emit(base: str, labels: str, kind: str, value) -> None:
        name = _metric_name(base, namespace)
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)
        lines.append(f"{name}{labels} {_format_value(value)}")

    for raw_name, value in snapshot.get("counters", {}).items():
        base, labels = _split_labels(raw_name)
        emit(base, labels, "counter", value)
    for raw_name, value in snapshot.get("gauges", {}).items():
        base, labels = _split_labels(raw_name)
        emit(base, labels, "gauge", value)
    for raw_name, hist in snapshot.get("histograms", {}).items():
        base, labels = _split_labels(raw_name)
        name = _metric_name(base, namespace)
        if name not in typed:
            lines.append(f"# TYPE {name} summary")
            typed.add(name)
        if labels:
            inner = labels[1:-1] + ","
        else:
            inner = ""
        for quantile, key in _QUANTILES:
            lines.append(
                f'{name}{{{inner}quantile="{quantile}"}} '
                f"{_format_value(hist[key])}"
            )
        total = hist.get("sum", hist["mean"] * hist["count"])
        lines.append(f"{name}_sum{labels} {_format_value(total)}")
        lines.append(f"{name}_count{labels} {_format_value(hist['count'])}")
    return "\n".join(lines) + "\n"


_LABEL_ESCAPE = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPE.get(ch, ch) for ch in str(value))


def heat_to_prometheus(
    aggregates: Sequence[Dict[str, Any]], namespace: str = "repro"
) -> str:
    """Render per-label tile-heat aggregates as Prometheus counters.

    ``aggregates`` is :meth:`~repro.obs.heat.HeatRecorder.aggregates`
    output — one entry per ``(tenant, class)`` label.  Only the
    bounded label axis is exported (per-block series would explode
    cardinality; the full histogram is the JSON heat map instead).
    """
    reads_name = _metric_name("tile_heat_reads_total", namespace)
    writes_name = _metric_name("tile_heat_writes_total", namespace)
    tiles_name = _metric_name("tile_heat_tiles", namespace)
    lines = [
        f"# TYPE {reads_name} counter",
        f"# TYPE {writes_name} counter",
        f"# TYPE {tiles_name} gauge",
    ]
    for row in aggregates:
        labels = (
            f'{{tenant="{_escape_label(row.get("tenant", ""))}",'
            f'class="{_escape_label(row.get("class", ""))}"}}'
        )
        lines.append(f"{reads_name}{labels} {int(row.get('reads', 0))}")
        lines.append(f"{writes_name}{labels} {int(row.get('writes', 0))}")
        lines.append(f"{tiles_name}{labels} {int(row.get('tiles', 0))}")
    return "\n".join(lines) + "\n"
