"""Per-tile heat accounting attributed by tenant and query class.

ROADMAP item 5 (adaptive per-region coefficient budgets) needs to know
*which tiles the workload actually touches* — not just how many block
I/Os happened.  This module records a bounded per-block read/write
histogram, attributed to a ``(tenant, query class)`` label that the
serving layers establish around each unit of work:

* :class:`~repro.service.engine.QueryEngine` labels each executing
  query with its tenant and query kind (and the batch prefetch wave
  with ``"prefetch"``);
* :class:`~repro.server.hub.ServingHub` labels update batches with
  ``"update"``.

Charging happens exactly where the buffer pool already charges
``IOStats`` cache counters (:meth:`BufferPool.get` / ``create`` /
``mark_dirty``), so a heat *read* is a logical tile touch (hit or
miss) and a heat *write* is a logical tile dirtying — write-backs on
eviction/flush are deliberately **not** re-attributed, since the
dirtying query already paid.

Like the tracer, heat recording is off by default and zero-cost when
off: the pool's hooks pay one global load and a ``None`` check per
touch.  The serving hub installs a recorder for its lifetime; library
code (experiments, kernels) never pays for it.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "HeatRecorder",
    "current_heat_label",
    "get_heat",
    "heat_context",
    "set_heat",
    "touch_read",
    "touch_write",
]

#: Attribution label for touches made outside any ``heat_context``.
UNATTRIBUTED: Tuple[str, str] = ("", "")

_label: "ContextVar[Optional[Tuple[str, str]]]" = ContextVar(
    "repro_heat_label", default=None
)


class HeatRecorder:
    """Bounded, thread-safe per-block heat counters.

    One counter pair ``[reads, writes]`` per ``(label, block_id)``.
    The label axis is bounded by tenants x query classes; the block
    axis is bounded by ``max_tiles`` per label — past it new blocks
    are dropped (and counted in ``dropped``) rather than growing
    without bound on a long-lived server.
    """

    def __init__(self, max_tiles: int = 65536) -> None:
        if max_tiles < 1:
            raise ValueError(f"max_tiles must be >= 1, got {max_tiles}")
        self._max_tiles = max_tiles
        self._lock = threading.Lock()
        # (tenant, class) -> block_id -> [reads, writes]; guarded-by: _lock
        self._tiles: Dict[Tuple[str, str], Dict[int, List[int]]] = {}
        self.dropped = 0  # guarded-by: _lock
        self.touches = 0  # guarded-by: _lock

    @property
    def max_tiles(self) -> int:
        return self._max_tiles

    def touch(self, block_id: int, reads: int = 0, writes: int = 0) -> None:
        """Charge a block touch to the calling context's label."""
        label = _label.get() or UNATTRIBUTED
        with self._lock:
            self.touches += 1
            per_label = self._tiles.get(label)
            if per_label is None:
                per_label = self._tiles[label] = {}
            cell = per_label.get(block_id)
            if cell is None:
                if len(per_label) >= self._max_tiles:
                    self.dropped += 1
                    return
                per_label[block_id] = [reads, writes]
            else:
                cell[0] += reads
                cell[1] += writes

    # ------------------------------------------------------------------
    # read-out
    # ------------------------------------------------------------------

    def aggregates(self, tenant: Optional[str] = None) -> List[dict]:
        """Per-label roll-up: one entry per ``(tenant, class)``.

        ``tenant`` filters to one tenant's labels (the tenant-scoped
        ``/debug/heat`` view).  Sorted by total touches, hottest first.
        """
        rows = []
        with self._lock:
            for (label_tenant, label_class), per_label in self._tiles.items():
                if tenant is not None and label_tenant != tenant:
                    continue
                reads = sum(cell[0] for cell in per_label.values())
                writes = sum(cell[1] for cell in per_label.values())
                rows.append(
                    {
                        "tenant": label_tenant,
                        "class": label_class,
                        "reads": reads,
                        "writes": writes,
                        "tiles": len(per_label),
                    }
                )
        rows.sort(key=lambda row: -(row["reads"] + row["writes"]))
        return rows

    def snapshot(
        self, tenant: Optional[str] = None, top: Optional[int] = None
    ) -> dict:
        """JSON-ready heat map: per-label aggregates plus the per-block
        histogram (hottest blocks first, ``top`` bounds the list).

        Each tile entry carries its total reads/writes and the
        per-label breakdown keyed ``"tenant/class"`` — the shape the
        adaptive-budget planner (ROADMAP item 5) consumes directly.
        """
        per_block: Dict[int, dict] = {}
        with self._lock:
            for (label_tenant, label_class), per_label in self._tiles.items():
                if tenant is not None and label_tenant != tenant:
                    continue
                key = f"{label_tenant}/{label_class}"
                for block_id, (reads, writes) in per_label.items():
                    entry = per_block.get(block_id)
                    if entry is None:
                        entry = per_block[block_id] = {
                            "block": block_id,
                            "reads": 0,
                            "writes": 0,
                            "by": {},
                        }
                    entry["reads"] += reads
                    entry["writes"] += writes
                    entry["by"][key] = [reads, writes]
            dropped = self.dropped
            touches = self.touches
        tiles = sorted(
            per_block.values(),
            key=lambda entry: -(entry["reads"] + entry["writes"]),
        )
        if top is not None:
            tiles = tiles[:top]
        return {
            "touches": touches,
            "dropped": dropped,
            "labels": self.aggregates(tenant=tenant),
            "tiles": tiles,
        }

    def dump_json(self, path: str, tenant: Optional[str] = None) -> None:
        """Write the heat map snapshot as a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(tenant=tenant), handle, indent=2)

    def clear(self) -> None:
        with self._lock:
            self._tiles.clear()
            self.dropped = 0
            self.touches = 0


# ----------------------------------------------------------------------
# module-level recorder registry (what the buffer pool consults)
# ----------------------------------------------------------------------

_active: Optional[HeatRecorder] = None


def get_heat() -> Optional[HeatRecorder]:
    """The installed recorder (``None`` when heat accounting is off)."""
    return _active


def set_heat(recorder: Optional[HeatRecorder]) -> Optional[HeatRecorder]:
    """Install ``recorder`` globally; returns the previous one so a
    scoped owner (the serving hub) can restore it on close."""
    global _active
    previous = _active
    _active = recorder
    return previous


def touch_read(block_id: int, amount: int = 1) -> None:
    """Hot-path hook: record a logical tile read (no-op when off)."""
    recorder = _active
    if recorder is not None:
        recorder.touch(block_id, reads=amount)


def touch_write(block_id: int, amount: int = 1) -> None:
    """Hot-path hook: record a logical tile dirtying (no-op when off)."""
    recorder = _active
    if recorder is not None:
        recorder.touch(block_id, writes=amount)


def current_heat_label() -> Optional[Tuple[str, str]]:
    """The calling context's ``(tenant, query class)`` label, if any."""
    return _label.get()


@contextmanager
def heat_context(tenant: str, query_class: str) -> Iterator[None]:
    """Scope attributing every heat touch to ``(tenant, query_class)``.

    Labels follow the :mod:`contextvars` context, so they stay
    confined to the thread (or task) that set them — engine worker
    threads each establish their own label per query.
    """
    token = _label.set((tenant, query_class))
    try:
        yield
    finally:
        _label.reset(token)
