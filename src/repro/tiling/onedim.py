"""One-dimensional subtree tiling (paper, Section 3, Figure 4).

The wavelet tree is partitioned into binary subtrees of height ``b``
(``B = 2^b`` coefficients per disk block): a tile holds the ``2^b - 1``
details of one subtree plus, in the spare slot, the scaling coefficient
``u_{r,p}`` corresponding to the subtree root — the redundancy that
"dramatically reduces query costs".

Bands of ``b`` levels are **bottom-aligned**: the finest levels — where
almost all coefficients live — always form full tiles, and only the
single top band may be shorter than ``b``.  Any root-path access then
touches at least ``b`` useful coefficients per fetched block
(logarithmic utilisation, the best possible without redundancy [10]).

Tile addressing
---------------
A detail ``w_{j,k}`` belongs to band ``t = (j - 1) // b``; the band's
root level is ``r = min((t + 1) * b, n)``; the subtree root position is
``p = k >> (r - j)``.  The tile key is ``(t, p)``.  Within the tile,
details are heap-numbered (root = slot 1, children of slot ``s`` are
``2s`` and ``2s + 1``) and slot 0 holds ``u_{r,p}``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.util.bits import ceil_div, ilog2

__all__ = ["OneDimTiling"]

TileKey = Tuple[int, int]  # (band, subtree root position)


class OneDimTiling:
    """Subtree tiling of the wavelet tree of a size ``2^n`` transform.

    Parameters
    ----------
    size:
        Domain size ``N = 2^n``.
    block_edge:
        ``B = 2^b``, the number of coefficients per (one-dimensional)
        disk block; must satisfy ``2 <= B <= N``.
    """

    def __init__(self, size: int, block_edge: int) -> None:
        self._n = ilog2(size)
        self._b = ilog2(block_edge)
        if self._b < 1:
            raise ValueError(f"block_edge must be >= 2, got {block_edge}")
        if self._b > self._n:
            raise ValueError(
                f"block_edge {block_edge} exceeds domain size {size}"
            )
        self._size = size
        self._block_edge = block_edge

    @property
    def size(self) -> int:
        return self._size

    @property
    def levels(self) -> int:
        return self._n

    @property
    def block_edge(self) -> int:
        return self._block_edge

    @property
    def num_bands(self) -> int:
        """Number of level bands: ``ceil(n / b)``."""
        return ceil_div(self._n, self._b)

    def band_of_level(self, level: int) -> int:
        """Band index of decomposition level ``level``."""
        if not 1 <= level <= self._n:
            raise ValueError(f"level must be in [1, {self._n}], got {level}")
        return (level - 1) // self._b

    def band_root_level(self, band: int) -> int:
        """Root level ``r`` of ``band`` (capped at ``n`` for the top band)."""
        if not 0 <= band < self.num_bands:
            raise ValueError(
                f"band must be in [0, {self.num_bands}), got {band}"
            )
        return min((band + 1) * self._b, self._n)

    def band_height(self, band: int) -> int:
        """Number of levels in ``band`` (``b`` except maybe the top)."""
        return self.band_root_level(band) - band * self._b

    def tiles_in_band(self, band: int) -> int:
        """Number of tiles in ``band``: one per band-root tree node."""
        return 1 << (self._n - self.band_root_level(band))

    @property
    def num_tiles(self) -> int:
        """Total number of tiles over all bands."""
        return sum(self.tiles_in_band(band) for band in range(self.num_bands))

    # ------------------------------------------------------------------
    # coefficient -> (tile, slot)
    # ------------------------------------------------------------------

    def tile_of_detail(self, level: int, position: int) -> TileKey:
        """Tile key of the detail ``w_{level, position}``."""
        band = self.band_of_level(level)
        depth = self.band_root_level(band) - level
        return band, position >> depth

    def slot_of_detail(self, level: int, position: int) -> int:
        """Heap slot of ``w_{level, position}`` inside its tile."""
        band = self.band_of_level(level)
        depth = self.band_root_level(band) - level
        root_position = position >> depth
        return (1 << depth) + position - (root_position << depth)

    def locate_index(self, index: int) -> Tuple[TileKey, int]:
        """(tile, slot) of a flat transform index.

        Index 0 (the overall average) lives in slot 0 of the top tile.
        """
        if index == 0:
            return (self.num_bands - 1, 0), 0
        power = index.bit_length() - 1
        level = self._n - power
        position = index - (1 << power)
        return (
            self.tile_of_detail(level, position),
            self.slot_of_detail(level, position),
        )

    def locate_indices(
        self, indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`locate_index` for arrays of detail indices.

        Returns ``(bands, root_positions, slots)`` as int64 arrays.
        Index 0 is mapped like :meth:`locate_index` (top tile, slot 0).
        """
        flat = np.asarray(indices, dtype=np.int64)
        if flat.size and (flat.min() < 0 or flat.max() >= self._size):
            raise ValueError("flat indices out of range")
        safe = np.maximum(flat, 1)
        # frexp is exact: floor(log2(i)) == exponent - 1 for integers.
        __, exponents = np.frexp(safe.astype(np.float64))
        powers = exponents.astype(np.int64) - 1
        levels = self._n - powers
        positions = safe - (np.int64(1) << powers)
        bands = (levels - 1) // self._b
        roots = np.minimum((bands + 1) * self._b, self._n)
        depths = roots - levels
        root_positions = positions >> depths
        slots = (np.int64(1) << depths) + positions - (root_positions << depths)
        is_scaling = flat == 0
        if np.any(is_scaling):
            bands = np.where(is_scaling, self.num_bands - 1, bands)
            root_positions = np.where(is_scaling, 0, root_positions)
            slots = np.where(is_scaling, 0, slots)
        return bands, root_positions, slots

    # ------------------------------------------------------------------
    # tile -> coefficients
    # ------------------------------------------------------------------

    def scaling_of_tile(self, tile: TileKey) -> Tuple[int, int]:
        """``(level, position)`` of the scaling coefficient in slot 0."""
        band, root_position = tile
        return self.band_root_level(band), root_position

    def details_of_tile(self, tile: TileKey) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(level, position, slot)`` for every detail in ``tile``."""
        band, root_position = tile
        root_level = self.band_root_level(band)
        for depth in range(self.band_height(band)):
            level = root_level - depth
            base = root_position << depth
            for offset in range(1 << depth):
                yield level, base + offset, (1 << depth) + offset

    def flat_indices_of_tile(self, tile: TileKey) -> np.ndarray:
        """Flat transform indices of all details in ``tile`` (slot order)."""
        indices: List[int] = []
        for level, position, __ in self.details_of_tile(tile):
            indices.append((1 << (self._n - level)) + position)
        return np.asarray(indices, dtype=np.int64)

    # ------------------------------------------------------------------
    # access-pattern helpers
    # ------------------------------------------------------------------

    def tiles_on_root_path(self, data_position: int) -> List[TileKey]:
        """Tiles touched when reconstructing ``data[data_position]``.

        One tile per band — the block-level image of Lemma 1.
        """
        if not 0 <= data_position < self._size:
            raise ValueError(
                f"data position must be in [0, {self._size}), got {data_position}"
            )
        return [
            (band, data_position >> self.band_root_level(band))
            for band in range(self.num_bands)
        ]

    def tiles_of_subtree(self, level: int, position: int) -> List[TileKey]:
        """All tiles holding details of the subtree rooted at
        ``w_{level, position}`` (the SHIFT footprint of a dyadic range
        of size ``2^level`` at translation ``position``)."""
        tiles: List[TileKey] = []
        top_band = self.band_of_level(level)
        for band in range(top_band + 1):
            root_level = self.band_root_level(band)
            if root_level >= level:
                # The subtree enters this band only via its own top part.
                tiles.append(self.tile_of_detail(level, position))
                continue
            shift = level - root_level
            first = position << shift
            tiles.extend((band, first + i) for i in range(1 << shift))
        return tiles
