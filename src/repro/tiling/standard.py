"""Cross-product tiling for the standard multidimensional form
(paper, Section 3.2).

Each dimension is tiled independently with :class:`OneDimTiling`; a
multidimensional tile is the cross product of ``d`` one-dimensional
tiles and holds ``B^d`` coefficients, exactly one disk block.  The key
consequence exploited throughout the library: because coefficient
positions factor per dimension, the tiles touched by any cross-product
index set ``T_1 x ... x T_d`` are exactly the cross product of the
per-dimension touched tile sets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.tiling.onedim import OneDimTiling, TileKey

__all__ = ["StandardTiling"]

StdTileKey = Tuple[TileKey, ...]


class StandardTiling:
    """Per-dimension cross-product tiling of a standard-form transform.

    Parameters
    ----------
    shape:
        Domain shape (each extent a power of two; extents may differ).
    block_edge:
        Per-dimension tile edge ``B = 2^b``; a block holds ``B^d``
        coefficients.
    """

    def __init__(self, shape: Sequence[int], block_edge: int) -> None:
        self._shape = tuple(shape)
        self._per_dim = [OneDimTiling(extent, block_edge) for extent in shape]
        self._block_edge = block_edge

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    @property
    def block_edge(self) -> int:
        return self._block_edge

    @property
    def block_slots(self) -> int:
        """Coefficients per block: ``B^d``."""
        return self._block_edge ** self.ndim

    @property
    def num_tiles(self) -> int:
        total = 1
        for tiling in self._per_dim:
            total *= tiling.num_tiles
        return total

    def dim(self, axis: int) -> OneDimTiling:
        """The one-dimensional tiling of ``axis``."""
        return self._per_dim[axis]

    def locate(self, position: Sequence[int]) -> Tuple[StdTileKey, int]:
        """(tile key, flat slot) of the coefficient at array ``position``.

        The slot linearises the per-dimension slots row-major over a
        ``B^d`` hypercube.
        """
        if len(position) != self.ndim:
            raise ValueError(
                f"position must have {self.ndim} axes, got {position}"
            )
        tile_parts: List[TileKey] = []
        slot = 0
        for tiling, index in zip(self._per_dim, position):
            part, dim_slot = tiling.locate_index(int(index))
            tile_parts.append(part)
            slot = slot * self._block_edge + dim_slot
        return tuple(tile_parts), slot

    def locate_axis_indices(
        self, axis: int, indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised per-axis location (bands, root positions, slots)."""
        return self._per_dim[axis].locate_indices(indices)

    def tiles_of_cross_product(
        self, per_axis_indices: Sequence[np.ndarray]
    ) -> int:
        """Number of distinct tiles covering ``T_1 x ... x T_d``.

        Uses the factorisation property: the touched tile set is the
        cross product of per-axis touched tile sets.
        """
        if len(per_axis_indices) != self.ndim:
            raise ValueError("need one index array per axis")
        total = 1
        for axis, indices in enumerate(per_axis_indices):
            bands, roots, __ = self.locate_axis_indices(axis, indices)
            # Pair (band, root) into one integer key for unique counting.
            combined = bands * (np.int64(self._shape[axis]) + 1) + roots
            total *= int(np.unique(combined).size)
        return total

    def tiles_on_root_path(
        self, data_position: Sequence[int]
    ) -> List[StdTileKey]:
        """Tiles needed to reconstruct one data value (cross product of
        per-dimension root-path tiles)."""
        per_dim_paths = [
            tiling.tiles_on_root_path(int(index))
            for tiling, index in zip(self._per_dim, data_position)
        ]
        tiles: List[StdTileKey] = []

        def recurse(axis: int, chosen: List[TileKey]) -> None:
            if axis == self.ndim:
                tiles.append(tuple(chosen))
                return
            for part in per_dim_paths[axis]:
                chosen.append(part)
                recurse(axis + 1, chosen)
                chosen.pop()

        recurse(0, [])
        return tiles
