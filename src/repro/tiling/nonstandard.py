"""Quadtree-subtree tiling for the non-standard form (paper, Section 3.2,
Figure 7).

A tile is a height-``b`` subtree of the ``D = 2^d``-ary quadtree.  Each
quadtree node holds ``D - 1`` detail coefficients, so a full tile holds
``(D^b - 1) / (D - 1)`` nodes = ``D^b - 1`` details, plus the scaling
coefficient of the subtree root in the spare slot — ``D^b = B^d``
coefficients, exactly one disk block.

Bands are bottom-aligned over quadtree levels, mirroring
:class:`repro.tiling.onedim.OneDimTiling`.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.util.bits import ceil_div, ilog2
from repro.wavelet.keys import NonStandardKey

__all__ = ["NonStandardTiling"]

NsTileKey = Tuple[int, Tuple[int, ...]]  # (band, subtree root node position)


class NonStandardTiling:
    """Subtree tiling of the non-standard quadtree of an ``N^d`` cube.

    Parameters
    ----------
    size:
        Cube edge ``N = 2^n``.
    ndim:
        Number of dimensions ``d``.
    block_edge:
        Per-dimension tile edge ``B = 2^b``; a block holds
        ``B^d = (2^d)^b`` coefficients.
    """

    def __init__(self, size: int, ndim: int, block_edge: int) -> None:
        if ndim < 1:
            raise ValueError(f"ndim must be >= 1, got {ndim}")
        self._n = ilog2(size)
        self._b = ilog2(block_edge)
        if self._b < 1:
            raise ValueError(f"block_edge must be >= 2, got {block_edge}")
        if self._b > self._n:
            raise ValueError(
                f"block_edge {block_edge} exceeds cube edge {size}"
            )
        self._size = size
        self._ndim = ndim
        self._block_edge = block_edge
        self._branching = 1 << ndim

    @property
    def size(self) -> int:
        return self._size

    @property
    def ndim(self) -> int:
        return self._ndim

    @property
    def block_edge(self) -> int:
        return self._block_edge

    @property
    def branching(self) -> int:
        """``D = 2^d``."""
        return self._branching

    @property
    def block_slots(self) -> int:
        """Coefficients per block: ``B^d``."""
        return self._block_edge ** self._ndim

    @property
    def num_bands(self) -> int:
        return ceil_div(self._n, self._b)

    def band_of_level(self, level: int) -> int:
        if not 1 <= level <= self._n:
            raise ValueError(f"level must be in [1, {self._n}], got {level}")
        return (level - 1) // self._b

    def band_root_level(self, band: int) -> int:
        if not 0 <= band < self.num_bands:
            raise ValueError(
                f"band must be in [0, {self.num_bands}), got {band}"
            )
        return min((band + 1) * self._b, self._n)

    def band_height(self, band: int) -> int:
        return self.band_root_level(band) - band * self._b

    def tiles_in_band(self, band: int) -> int:
        nodes_per_axis = 1 << (self._n - self.band_root_level(band))
        return nodes_per_axis ** self._ndim

    @property
    def num_tiles(self) -> int:
        return sum(self.tiles_in_band(band) for band in range(self.num_bands))

    # ------------------------------------------------------------------
    # coefficient -> (tile, slot)
    # ------------------------------------------------------------------

    def tile_of_node(self, level: int, node: Tuple[int, ...]) -> NsTileKey:
        """Tile key of the quadtree node at ``(level, node)``."""
        band = self.band_of_level(level)
        depth = self.band_root_level(band) - level
        return band, tuple(k >> depth for k in node)

    def _node_ordinal(self, level: int, node: Tuple[int, ...]) -> int:
        """Within-tile ordinal of a node: breadth-first, row-major
        within each depth."""
        band = self.band_of_level(level)
        depth = self.band_root_level(band) - level
        root = tuple(k >> depth for k in node)
        base = 0
        for lower_depth in range(depth):
            base += (1 << (self._ndim * lower_depth))
        local = 0
        for axis, k in enumerate(node):
            local = local * (1 << depth) + (k - (root[axis] << depth))
        return base + local

    def locate_key(self, key: NonStandardKey) -> Tuple[NsTileKey, int]:
        """(tile, slot) of a non-standard detail coefficient.

        Slot 0 of every tile holds the subtree root's scaling
        coefficient; details fill slots ``1 ..`` in node-ordinal order,
        ``D - 1`` consecutive slots per node.
        """
        if key.ndim != self._ndim:
            raise ValueError(
                f"key has {key.ndim} axes, tiling has {self._ndim}"
            )
        tile = self.tile_of_node(key.level, key.node)
        ordinal = self._node_ordinal(key.level, key.node)
        slot = 1 + ordinal * (self._branching - 1) + (key.type_mask - 1)
        return tile, slot

    def locate_scaling(self) -> Tuple[NsTileKey, int]:
        """(tile, slot) of the overall average: top tile, slot 0."""
        return (self.num_bands - 1, (0,) * self._ndim), 0

    def scaling_of_tile(self, tile: NsTileKey) -> Tuple[int, Tuple[int, ...]]:
        """``(level, node)`` of the scaling coefficient in slot 0."""
        band, root = tile
        return self.band_root_level(band), root

    # ------------------------------------------------------------------
    # tile -> coefficients
    # ------------------------------------------------------------------

    def keys_of_tile(self, tile: NsTileKey) -> Iterator[NonStandardKey]:
        """Yield every detail key stored in ``tile`` (slot order)."""
        band, root = tile
        root_level = self.band_root_level(band)
        for depth in range(self.band_height(band)):
            level = root_level - depth
            side = 1 << depth

            def nodes(axis: int, prefix: Tuple[int, ...]):
                if axis == self._ndim:
                    yield prefix
                    return
                base = root[axis] << depth
                for offset in range(side):
                    yield from nodes(axis + 1, prefix + (base + offset,))

            for node in nodes(0, ()):
                for type_mask in range(1, self._branching):
                    yield NonStandardKey(level, node, type_mask)

    # ------------------------------------------------------------------
    # access-pattern helpers
    # ------------------------------------------------------------------

    def tiles_on_root_path(
        self, data_position: Tuple[int, ...]
    ) -> List[NsTileKey]:
        """Tiles touched when reconstructing one cube value — one per
        band."""
        if len(data_position) != self._ndim:
            raise ValueError(
                f"position must have {self._ndim} axes, got {data_position}"
            )
        tiles: List[NsTileKey] = []
        for band in range(self.num_bands):
            root_level = self.band_root_level(band)
            tiles.append(
                (band, tuple(x >> root_level for x in data_position))
            )
        return tiles

    def tiles_of_subtree(
        self, level: int, node: Tuple[int, ...]
    ) -> List[NsTileKey]:
        """All tiles holding details of the quadtree subtree at
        ``(level, node)`` — the non-standard SHIFT footprint of a cubic
        dyadic range of edge ``2^level``."""
        tiles: List[NsTileKey] = []
        top_band = self.band_of_level(level)
        for band in range(top_band + 1):
            root_level = self.band_root_level(band)
            if root_level >= level:
                tiles.append(self.tile_of_node(level, node))
                continue
            shift = level - root_level
            side = 1 << shift

            def roots(axis: int, prefix: Tuple[int, ...]):
                if axis == self._ndim:
                    yield prefix
                    return
                base = node[axis] << shift
                for offset in range(side):
                    yield from roots(axis + 1, prefix + (base + offset,))

            tiles.extend((band, root) for root in roots(0, ()))
        return tiles
