"""Coefficient-to-disk-block allocation strategies (paper, Section 3)."""

from repro.tiling.nonstandard import NonStandardTiling, NsTileKey
from repro.tiling.onedim import OneDimTiling, TileKey
from repro.tiling.standard import StandardTiling, StdTileKey

__all__ = [
    "NonStandardTiling",
    "NsTileKey",
    "OneDimTiling",
    "StandardTiling",
    "StdTileKey",
    "TileKey",
]
