"""Appending to wavelet-decomposed transforms (paper, Section 5.2)."""

from repro.append.appender import AppendRecord, StandardAppender
from repro.append.expansion import expand_standard_axis, expansion_axis_map
from repro.append.nonstandard import expand_nonstandard

__all__ = [
    "AppendRecord",
    "StandardAppender",
    "expand_nonstandard",
    "expand_standard_axis",
    "expansion_axis_map",
]
