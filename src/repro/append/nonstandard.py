"""Domain expansion for the non-standard form.

The paper works the appending analysis in the standard form and notes
the non-standard case is similar (Section 5.2).  This is that similar
case, for cubic growth: doubling every dimension of an ``N^d`` cube
whose data occupy the low corner.

Because non-standard quadtree nodes keep their ``(level, node)``
identity when the cube grows (the old cube is child ``(0..0)`` of the
new root chain), the old details SHIFT verbatim; only the old overall
average SPLITs — into the ``2^d - 1`` details of the new top node
(all with sign ``+`` since the data sit in every axis' low half) and
the new overall average, each ``u / 2^d``.
"""

from __future__ import annotations

from repro.wavelet.keys import NonStandardKey

__all__ = ["expand_nonstandard"]


def expand_nonstandard(old_store, new_store) -> None:
    """Relocate an ``N^d`` non-standard transform into a ``(2N)^d``
    store (old data in the low corner).

    Both stores may be dense or tiled; I/O lands on each store's own
    counters.  One full read of the old transform, one write of every
    (non-zero) new coefficient.
    """
    size = old_store.size
    ndim = old_store.ndim
    if new_store.size != 2 * size or new_store.ndim != ndim:
        raise ValueError(
            f"new store must be a {2 * size}^{ndim} cube, got "
            f"{new_store.size}^{new_store.ndim}"
        )
    n = size.bit_length() - 1

    # SHIFT: every old detail keeps its (level, node, type) identity.
    for level in range(1, n + 1):
        width = size >> level
        for type_mask in range(1, 1 << ndim):
            block = old_store.read_details(
                level, type_mask, (0,) * ndim, (width,) * ndim
            )
            new_store.set_details(level, type_mask, (0,) * ndim, block)

    # SPLIT: the old average feeds the new top node and the new average.
    average = old_store.read_scaling()
    share = average / float(1 << ndim)
    for type_mask in range(1, 1 << ndim):
        new_store.set_detail(
            NonStandardKey(n + 1, (0,) * ndim, type_mask), share
        )
    new_store.set_scaling(share)
