"""Appending new data to an existing transform (paper, Section 5.2).

The motivating scenario: years of measurements already decomposed, and
a new month of data arrives along the time dimension.  Appending is
*not* updating — the new cells lie outside the transformed domain, so
the transform itself must grow.

Per appended slab the appender:

1. transforms the slab in memory (``d``-dimensional DWT),
2. *expands* the store when the slab's position exceeds the current
   domain (doubling the growing dimension — rare but touches every
   coefficient; see :mod:`repro.append.expansion`), and
3. SHIFT-SPLITs the slab into the (possibly expanded) transform —
   ``O(M̃ + log(N/M̃))`` per dimension, cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.standard_ops import apply_chunk_standard
from repro.storage.iostats import IOStats
from repro.util.validation import (
    as_float_array,
    require_power_of_two_shape,
)

__all__ = ["AppendRecord", "StandardAppender"]


@dataclass
class AppendRecord:
    """Cost accounting for one appended slab."""

    slab_index: int
    expanded: bool
    io_delta: IOStats
    domain_shape: Tuple[int, ...]
    extras: dict = field(default_factory=dict)


class StandardAppender:
    """Maintains a growing standard-form transform by SHIFT-SPLIT.

    Parameters
    ----------
    slab_shape:
        Shape of each appended slab (all extents powers of two).  The
        non-growing extents fix those dimensions of the domain.
    grow_axis:
        The dimension along which slabs accumulate (the paper's time
        dimension).
    store_factory:
        ``callable(shape, stats) -> store`` building the coefficient
        store for a given domain shape (dense or tiled), charging I/O
        to the supplied :class:`IOStats`.  Called again at every
        expansion, because the domain shape changes; all stores share
        the appender's single counter object so per-append deltas span
        expansions cleanly.
    """

    def __init__(
        self,
        slab_shape: Sequence[int],
        grow_axis: int,
        store_factory: Callable[[Tuple[int, ...], IOStats], object],
    ) -> None:
        self._slab_shape = require_power_of_two_shape(slab_shape, "slab_shape")
        if not 0 <= grow_axis < len(self._slab_shape):
            raise ValueError(
                f"grow_axis must be in [0, {len(self._slab_shape)}), "
                f"got {grow_axis}"
            )
        self._grow_axis = grow_axis
        self._store_factory = store_factory
        self.stats = IOStats()
        self._store = store_factory(self._slab_shape, self.stats)
        self._appended = 0
        self.records: List[AppendRecord] = []

    @property
    def store(self):
        """The current coefficient store (replaced at each expansion)."""
        return self._store

    @property
    def domain_shape(self) -> Tuple[int, ...]:
        return tuple(self._store.shape)

    @property
    def slabs_appended(self) -> int:
        return self._appended

    @property
    def logical_extent(self) -> int:
        """Cells actually filled along the growing axis."""
        return self._appended * self._slab_shape[self._grow_axis]

    def _expand(self, axis: int | None = None) -> None:
        """Double one dimension (default: the growing axis),
        relocating every coefficient."""
        from repro.append.expansion import expand_standard_axis

        if axis is None:
            axis = self._grow_axis
        old_store = self._store
        new_shape = list(old_store.shape)
        new_shape[axis] *= 2
        new_store = self._store_factory(tuple(new_shape), self.stats)
        expand_standard_axis(old_store, new_store, axis)
        if hasattr(new_store, "flush"):
            new_store.flush()
        self._store = new_store

    def append(self, slab) -> AppendRecord:
        """Append one slab at the next position along the growing axis."""
        slab = as_float_array(slab, "slab")
        if tuple(slab.shape) != self._slab_shape:
            raise ValueError(
                f"slab must have shape {self._slab_shape}, got {slab.shape}"
            )
        grid_position = [0] * len(self._slab_shape)
        grid_position[self._grow_axis] = self._appended
        record = self.append_block(slab, grid_position)
        self._appended += 1
        return record

    def append_block(self, block, grid_position: Sequence[int]) -> AppendRecord:
        """Append a slab-shaped block at an arbitrary grid position,
        expanding *any* dimension that is too small.

        The paper's general appending case — "appending to the time
        domain and possibly on other measure dimensions": a new sensor
        row and a new month both arrive as blocks beyond the current
        domain.  The target region must be previously empty (appending
        is insertion of new cells, not updating; use
        :mod:`repro.update` for updates).
        """
        block = as_float_array(block, "block")
        if tuple(block.shape) != self._slab_shape:
            raise ValueError(
                f"block must have shape {self._slab_shape}, got {block.shape}"
            )
        grid_position = tuple(int(g) for g in grid_position)
        if len(grid_position) != len(self._slab_shape) or any(
            g < 0 for g in grid_position
        ):
            raise ValueError(f"invalid grid position {grid_position}")
        before = self.stats.snapshot()
        expanded = False
        for axis, (g, extent) in enumerate(
            zip(grid_position, self._slab_shape)
        ):
            while (g + 1) * extent > self._store.shape[axis]:
                self._expand(axis)
                expanded = True
        apply_chunk_standard(self._store, block, grid_position, fresh=True)
        if hasattr(self._store, "flush"):
            self._store.flush()
        record = AppendRecord(
            slab_index=self._appended,
            expanded=expanded,
            io_delta=self.stats.delta_since(before),
            domain_shape=self.domain_shape,
        )
        self.records.append(record)
        return record

    def to_array(self) -> np.ndarray:
        """Uncounted dense snapshot of the current transform."""
        return self._store.to_array()
