"""Domain expansion of a standard-form transform (paper, Section 5.2,
Figure 10).

Appending beyond the current domain makes a dimension's wavelet tree
grow one level: the domain doubles from ``N`` to ``2N``.  Because the
old data occupy the *left* half of the new domain (dyadic translation
0), the old details keep their ``(level, position)`` identity — SHIFT
is a pure flat re-indexing ``i -> i + 2^{floor(log2 i)}`` — and only the
old overall average SPLITs, into the new top detail ``w_{n+1,0} = u/2``
and the new overall average ``u_{n+1,0} = u/2``.

The cost is ``O(N^d)`` coefficients (every coefficient is relocated)
but only ``O((N/B)^d)`` blocks under tiling, which is why the paper's
Figure 13 expansion spikes shrink as tiles grow.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["expansion_axis_map", "expand_standard_axis"]


def expansion_axis_map(extent: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-axis gather map for doubling one dimension.

    Returns ``(sources, weights, targets)`` of length ``extent + 1``:
    the new-transform coefficient at flat index ``targets[p]`` equals
    ``old[sources[p]] * weights[p]``; all other new coefficients (the
    right half, which holds no data yet) are zero.
    """
    if extent < 1:
        raise ValueError(f"extent must be >= 1, got {extent}")
    old_details = np.arange(1, extent, dtype=np.int64)
    if old_details.size:
        __, exponents = np.frexp(old_details.astype(np.float64))
        powers = (exponents.astype(np.int64) - 1)
        detail_targets = old_details + (np.int64(1) << powers)
    else:
        detail_targets = old_details
    sources = np.concatenate(
        [np.zeros(2, dtype=np.int64), old_details]
    )
    weights = np.concatenate(
        [np.full(2, 0.5), np.ones(old_details.size)]
    )
    targets = np.concatenate(
        [np.asarray([0, 1], dtype=np.int64), detail_targets]
    )
    return sources, weights, targets


def expand_standard_axis(old_store, new_store, axis: int) -> None:
    """Relocate a whole standard-form transform into a store whose
    ``axis`` extent is doubled.

    Reads every old coefficient and writes every (non-zero) new one —
    the full SHIFT-SPLIT expansion pass.  Both stores may be dense or
    tiled; I/O is charged to each store's own counters.
    """
    old_shape = old_store.shape
    new_shape = new_store.shape
    for other in range(len(old_shape)):
        expected = old_shape[other] * (2 if other == axis else 1)
        if new_shape[other] != expected:
            raise ValueError(
                f"new store axis {other} must have extent {expected}, "
                f"got {new_shape[other]}"
            )
    full_axes = [
        np.arange(extent, dtype=np.int64) for extent in old_shape
    ]
    values = old_store.read_region(full_axes)
    sources, weights, targets = expansion_axis_map(old_shape[axis])
    gathered = np.take(values, sources, axis=axis)
    weight_shape = [1] * len(old_shape)
    weight_shape[axis] = weights.size
    gathered = gathered * weights.reshape(weight_shape)
    target_axes = list(full_axes)
    target_axes[axis] = targets
    new_store.set_region(target_axes, gathered)
