"""Multidimensional SHIFT-SPLIT for the non-standard form
(paper, Section 4.1) and its inverse (Section 5.4).

For a cubic dyadic chunk of edge ``M = 2^m`` inside an ``N^d`` cube,
the chunk's non-standard details (levels ``1..m``) SHIFT verbatim into
the global quadtree — ``M^d - 1`` coefficients — while only the single
chunk average SPLITs, contributing to the ``2^d - 1`` details of each
quadtree node on the path to the root plus the overall average:
``(2^d - 1)(n - m) + 1`` contributions of magnitude
``± u / 2^{(j-m) d}``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.plans import get_nonstandard_plan, plans_enabled
from repro.util.bits import ilog2
from repro.util.validation import require_power_of_two
from repro.wavelet.keys import NonStandardKey
from repro.wavelet.nonstandard import nonstandard_dwt, nonstandard_idwt

__all__ = [
    "shift_regions_nonstandard",
    "split_contributions_nonstandard",
    "split_weights_nonstandard",
    "apply_chunk_nonstandard",
    "apply_chunk_nonstandard_uncached",
    "extract_region_nonstandard",
    "shift_split_counts_nonstandard",
]


def _check_geometry(
    size: int, chunk_edge: int, grid_position: Sequence[int]
) -> Tuple[int, int]:
    n = ilog2(require_power_of_two(size, "size"))
    m = ilog2(require_power_of_two(chunk_edge, "chunk_edge"))
    if m > n:
        raise ValueError(f"chunk edge {chunk_edge} exceeds cube edge {size}")
    grid_side = size // chunk_edge
    if any(not 0 <= g < grid_side for g in grid_position):
        raise ValueError(
            f"grid position {tuple(grid_position)} out of "
            f"[0, {grid_side})^{len(grid_position)}"
        )
    return n, m


def shift_regions_nonstandard(
    size: int,
    chunk_edge: int,
    grid_position: Sequence[int],
) -> Iterator[Tuple[int, int, Tuple[int, ...], Tuple[slice, ...]]]:
    """Enumerate the SHIFT copy regions of a non-standard chunk.

    Yields ``(level, type_mask, global_node_start, chunk_slices)``:
    the chunk's Mallat sub-block at ``chunk_slices`` holds the level's
    details of ``type_mask`` and lands at the contiguous global node
    region starting at ``global_node_start``.
    """
    __, m = _check_geometry(size, chunk_edge, grid_position)
    ndim = len(grid_position)
    for level in range(1, m + 1):
        width = chunk_edge >> level  # chunk nodes per axis at this level
        for type_mask in range(1, 1 << ndim):
            chunk_slices = tuple(
                slice(width, 2 * width)
                if (type_mask >> axis) & 1
                else slice(0, width)
                for axis in range(ndim)
            )
            global_start = tuple(
                int(g) * width for g in grid_position
            )
            yield level, type_mask, global_start, chunk_slices


@lru_cache(maxsize=65536)
def _split_weights_cached(
    size: int, chunk_edge: int, grid_position: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    n, m = _check_geometry(size, chunk_edge, grid_position)
    ndim = len(grid_position)
    num_types = (1 << ndim) - 1
    shifts = np.arange(1, n - m + 1, dtype=np.int64)
    grid = np.asarray(grid_position, dtype=np.int64)
    # One row per path level: node positions, per-axis sign bits.
    path_nodes = grid[None, :] >> shifts[:, None]
    sign_bits = (grid[None, :] >> (shifts[:, None] - 1)) & 1
    masks = np.arange(1, 1 << ndim, dtype=np.int64)
    mask_bits = (masks[:, None] >> np.arange(ndim)[None, :]) & 1
    # Sign of (level, mask) = (-1)^(number of negative axes selected).
    parity = (sign_bits @ mask_bits.T) & 1
    signs = 1.0 - 2.0 * parity
    magnitudes = np.ldexp(1.0, -(shifts * ndim))
    weights = signs * magnitudes[:, None]
    levels = np.repeat(shifts + m, num_types)
    nodes = np.repeat(path_nodes, num_types, axis=0)
    type_masks = np.tile(masks, shifts.size)
    weights = np.ascontiguousarray(weights.reshape(-1))
    for array in (levels, nodes, type_masks, weights):
        array.setflags(write=False)
    scaling_weight = float(np.ldexp(1.0, -((n - m) * ndim)))
    return levels, nodes, type_masks, weights, scaling_weight


def split_weights_nonstandard(
    size: int,
    chunk_edge: int,
    grid_position: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    """Vectorised SPLIT structure of a non-standard chunk.

    Returns ``(levels, nodes, type_masks, weights, scaling_weight)``:
    parallel arrays with one entry per path-node detail contribution
    (level-ascending, type-mask-ascending — the order
    :func:`split_contributions_nonstandard` has always used), where the
    delta of entry ``i`` is ``average * weights[i]``; ``nodes`` has
    shape ``(K, d)``.  ``scaling_weight`` scales the overall-average
    increment.  All weights are signed powers of two, so multiplying by
    the average is exact.  Results are memoised — the arrays are
    read-only.
    """
    return _split_weights_cached(
        int(size), int(chunk_edge), tuple(int(g) for g in grid_position)
    )


def split_contributions_nonstandard(
    size: int,
    chunk_edge: int,
    grid_position: Sequence[int],
    average: float,
) -> Tuple[List[Tuple[NonStandardKey, float]], float]:
    """The SPLIT contributions of a non-standard chunk average.

    Returns ``(detail_contributions, scaling_delta)`` where
    ``detail_contributions`` pairs each path-node detail key with its
    signed delta and ``scaling_delta`` is the overall-average
    increment ``u / 2^{(n-m) d}``.

    Thin tuple-API wrapper over :func:`split_weights_nonstandard`.
    """
    levels, nodes, type_masks, weights, scaling_weight = (
        split_weights_nonstandard(size, chunk_edge, grid_position)
    )
    deltas = average * weights
    contributions = [
        (
            NonStandardKey(
                int(level), tuple(int(k) for k in node), int(mask)
            ),
            delta,
        )
        for level, node, mask, delta in zip(
            levels, nodes, type_masks, deltas.tolist()
        )
    ]
    return contributions, average * scaling_weight


def apply_chunk_nonstandard(
    store,
    chunk: np.ndarray,
    grid_position: Sequence[int],
    fresh: bool = True,
    chunk_is_transformed: bool = False,
) -> None:
    """Push one cubic chunk into the global non-standard transform.

    Mirrors :func:`repro.core.standard_ops.apply_chunk_standard` for
    the non-standard form.  ``store`` implements the non-standard
    store interface (dense or tiled).  Unless plans are disabled, the
    chunk geometry (SHIFT regions, SPLIT keys and weights) comes from a
    cached :class:`~repro.core.plans.NonStandardChunkPlan`.
    """
    chunk_hat = chunk if chunk_is_transformed else nonstandard_dwt(chunk)
    if plans_enabled():
        _check_geometry(store.size, chunk_hat.shape[0], grid_position)
        plan = get_nonstandard_plan(
            store.size, chunk_hat.shape[0], grid_position
        )
        plan.apply(store, chunk_hat, fresh=fresh)
        return
    apply_chunk_nonstandard_uncached(
        store, chunk_hat, grid_position, fresh=fresh, chunk_is_transformed=True
    )


def apply_chunk_nonstandard_uncached(
    store,
    chunk: np.ndarray,
    grid_position: Sequence[int],
    fresh: bool = True,
    chunk_is_transformed: bool = False,
) -> None:
    """The interpreted (plan-free) :func:`apply_chunk_nonstandard`."""
    chunk_hat = chunk if chunk_is_transformed else nonstandard_dwt(chunk)
    chunk_edge = chunk_hat.shape[0]
    size = store.size
    for level, mask, global_start, chunk_slices in shift_regions_nonstandard(
        size, chunk_edge, grid_position
    ):
        values = chunk_hat[chunk_slices]
        if fresh:
            store.set_details(level, mask, global_start, values)
        else:
            existing = store.read_details(
                level, mask, global_start, values.shape
            )
            store.set_details(level, mask, global_start, existing + values)
    average = float(chunk_hat[(0,) * chunk_hat.ndim])
    details, scaling_delta = split_contributions_nonstandard(
        size, chunk_edge, grid_position, average
    )
    for key, delta in details:
        store.add_detail(key, delta)
    store.add_scaling(scaling_delta)


def extract_region_nonstandard(
    store,
    corner: Sequence[int],
    region_edge: int,
) -> np.ndarray:
    """Reconstruct a cubic dyadic region from the global non-standard
    transform (Result 6, non-standard form).

    Inverse SHIFT gathers the region's own details (levels ``<= m``);
    inverse SPLIT rebuilds the region average by walking the quadtree
    path with the same signs the forward SPLIT used.  Cost:
    ``M^d + (2^d - 1) log(N/M) + 1`` coefficient touches.
    """
    size = store.size
    ndim = store.ndim
    require_power_of_two(region_edge, "region_edge")
    grid_position = []
    for axis, start in enumerate(corner):
        if int(start) % region_edge:
            raise ValueError(
                f"corner[{axis}]={start} is not aligned to edge {region_edge}"
            )
        grid_position.append(int(start) // region_edge)
    n, m = _check_geometry(size, region_edge, grid_position)

    region_hat = np.zeros((region_edge,) * ndim, dtype=np.float64)
    for level, mask, global_start, chunk_slices in shift_regions_nonstandard(
        size, region_edge, grid_position
    ):
        width = region_edge >> level
        region_hat[chunk_slices] = store.read_details(
            level, mask, global_start, (width,) * ndim
        )

    average = store.read_scaling()
    for level in range(m + 1, n + 1):
        shift = level - m
        node = tuple(g >> shift for g in grid_position)
        axis_signs = [
            -1.0 if (g >> (shift - 1)) & 1 else 1.0 for g in grid_position
        ]
        for type_mask in range(1, 1 << ndim):
            sign = 1.0
            for axis in range(ndim):
                if (type_mask >> axis) & 1:
                    sign *= axis_signs[axis]
            average += sign * store.read_detail(
                NonStandardKey(level, node, type_mask)
            )
    region_hat[(0,) * ndim] = average
    return nonstandard_idwt(region_hat)


def shift_split_counts_nonstandard(
    size: int, chunk_edge: int, ndim: int
) -> dict:
    """Analytic touch counts for one non-standard chunk
    (Section 4.1): SHIFT moves ``M^d - 1`` coefficients, SPLIT
    computes ``(2^d - 1)(n - m) + 1`` contributions."""
    n = ilog2(size)
    m = ilog2(chunk_edge)
    shift = chunk_edge ** ndim - 1
    split = ((1 << ndim) - 1) * (n - m) + 1
    return {"shift": shift, "split": split, "total": shift + split}
