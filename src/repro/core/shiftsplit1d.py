"""The SHIFT and SPLIT operations in one dimension (paper, Section 4).

Let ``a`` be a vector of size ``N = 2^n`` and ``b`` its ``(k+1)``-th
dyadic range of size ``M = 2^m`` (i.e. ``b = a[k*M : (k+1)*M]``).

SHIFT (definition, Section 4)
    The detail coefficients of ``b̂ = DWT(b)`` are re-indexed by
    ``f(j, i) = (j, k * 2^{m-j} + i)`` — they *are* the corresponding
    details of ``â`` restricted to the subtree rooted at ``w_{m,k}``,
    because Haar details depend only on data inside their support.

SPLIT (definition, Section 4)
    The average ``u^b_{m,0}`` of the range contributes to the
    ``n - m`` details on the path from ``w_{m,k}`` to the root and to
    the overall average:

    ``δw_{j, k >> (j-m)} = ± u / 2^{j-m}`` (sign + when the range lies
    in the left half of the coefficient's support, i.e. when bit
    ``j - m - 1`` of ``k`` is zero), and ``δu_{n,0} = u / 2^{n-m}``.

Everything here is pure index/weight arithmetic on the flat layout of
:mod:`repro.wavelet.layout`; applying the operations to stores happens
in :mod:`repro.transform` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.util.bits import ilog2
from repro.wavelet.layout import SCALING_INDEX

__all__ = [
    "AxisShiftSplit",
    "axis_shift_split",
    "shift_target_indices",
    "split_contributions",
    "split_weights",
]


def _check_geometry(size: int, chunk: int, translation: int) -> Tuple[int, int]:
    n = ilog2(size)
    m = ilog2(chunk)
    if m > n:
        raise ValueError(f"chunk size {chunk} exceeds domain size {size}")
    if not 0 <= translation < (size // chunk):
        raise ValueError(
            f"translation must be in [0, {size // chunk}), got {translation}"
        )
    return n, m


def shift_target_indices(
    size: int, chunk: int, translation: int
) -> np.ndarray:
    """Global flat indices of the SHIFT targets, in chunk-flat order.

    Entry ``i`` (for ``i`` in ``[1, M)``) is the flat index in ``â``
    where chunk-transform entry ``i`` lands; entry 0 (the chunk
    average, which SPLIT handles) is ``-1``.
    """
    n, m = _check_geometry(size, chunk, translation)
    targets = np.full(chunk, -1, dtype=np.int64)
    for level in range(1, m + 1):
        width = 1 << (m - level)  # details of this level in the chunk
        local = np.arange(width, dtype=np.int64)
        chunk_flat = width + local
        global_flat = (1 << (n - level)) + translation * width + local
        targets[chunk_flat] = global_flat
    return targets


def split_weights(
    size: int, chunk: int, translation: int
) -> Tuple[np.ndarray, np.ndarray]:
    """SPLIT targets and weights: ``delta = average * weight``.

    Returns ``(indices, weights)`` of length ``n - m + 1``: one entry
    per path detail ``j = m+1 .. n`` (finest first) followed by the
    overall average at flat index 0.
    """
    n, m = _check_geometry(size, chunk, translation)
    indices: List[int] = []
    weights: List[float] = []
    for level in range(m + 1, n + 1):
        shift = level - m
        position = translation >> shift
        sign = -1.0 if (translation >> (shift - 1)) & 1 else 1.0
        indices.append((1 << (n - level)) + position)
        weights.append(sign / (1 << shift))
    indices.append(SCALING_INDEX)
    weights.append(1.0 / (1 << (n - m)))
    return (
        np.asarray(indices, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )


def split_contributions(
    size: int, chunk: int, translation: int, average: float
) -> List[Tuple[int, float]]:
    """The SPLIT contributions ``[(flat index, delta), ...]`` of a
    range average (convenience wrapper over :func:`split_weights`)."""
    indices, weights = split_weights(size, chunk, translation)
    return [
        (int(index), float(average * weight))
        for index, weight in zip(indices, weights)
    ]


@dataclass(frozen=True)
class AxisShiftSplit:
    """The complete per-axis SHIFT-SPLIT mapping of one dyadic range.

    Relates the 1-d transform of a chunk (length ``M``) to the global
    1-d transform (length ``N``) along one axis.  The mapping has
    ``L = M + n - m`` entries: the ``M - 1`` SHIFT entries first, then
    the ``n - m`` SPLIT path entries, then the overall average.

    For the multidimensional standard form these per-axis mappings
    cross-multiply (Section 4.1): contribution tensor entry
    ``(p_1..p_d)`` is ``chunk_hat[source_1[p_1], ...] * weight_1[p_1]
    * ... `` landing at global position ``(target_1[p_1], ...)``.

    Attributes
    ----------
    source:
        Index into the chunk-transform axis feeding each entry
        (``i`` for SHIFT entries, ``0`` for all SPLIT entries).
    weight:
        Forward weight (1 for SHIFT; ``±1/2^{j-m}`` and ``1/2^{n-m}``
        for SPLIT).
    target:
        Global flat index of each entry.
    inverse_weight:
        Weight with which the *global* coefficient at ``target``
        enters the reconstruction of the chunk's own transform:
        pass-through 1 for SHIFT entries, ``±1`` for path details and
        ``1`` for the average (Section 5.4's inverse SPLIT).
    num_shift:
        Number of leading pure-SHIFT entries (``M - 1``).
    """

    size: int
    chunk: int
    translation: int
    source: np.ndarray
    weight: np.ndarray
    target: np.ndarray
    inverse_weight: np.ndarray
    num_shift: int

    @property
    def num_entries(self) -> int:
        return int(self.target.size)

    def shift_slice(self) -> slice:
        """Selector of the pure-SHIFT entries."""
        return slice(0, self.num_shift)

    def split_slice(self) -> slice:
        """Selector of the SPLIT entries (path details + average)."""
        return slice(self.num_shift, self.num_entries)


def axis_shift_split(
    size: int, chunk: int, translation: int
) -> AxisShiftSplit:
    """Build the per-axis SHIFT-SPLIT mapping (see
    :class:`AxisShiftSplit`)."""
    _check_geometry(size, chunk, translation)
    shift_targets = shift_target_indices(size, chunk, translation)
    split_indices, split_w = split_weights(size, chunk, translation)
    num_shift = chunk - 1
    source = np.concatenate(
        [
            np.arange(1, chunk, dtype=np.int64),
            np.zeros(split_indices.size, dtype=np.int64),
        ]
    )
    weight = np.concatenate(
        [np.ones(num_shift, dtype=np.float64), split_w]
    )
    target = np.concatenate([shift_targets[1:], split_indices])
    inverse_weight = np.concatenate(
        [
            np.ones(num_shift, dtype=np.float64),
            np.sign(split_w[:-1]),
            np.ones(1, dtype=np.float64),
        ]
    )
    return AxisShiftSplit(
        size=size,
        chunk=chunk,
        translation=translation,
        source=source,
        weight=weight,
        target=target,
        inverse_weight=inverse_weight,
        num_shift=num_shift,
    )
