"""The paper's primary contribution: the SHIFT and SPLIT operations,
their multidimensional forms, their inverses, and the plan-compilation
layer that caches their index structure."""

from repro.core.nonstandard_ops import (
    apply_chunk_nonstandard,
    apply_chunk_nonstandard_uncached,
    extract_region_nonstandard,
    shift_regions_nonstandard,
    shift_split_counts_nonstandard,
    split_contributions_nonstandard,
    split_weights_nonstandard,
)
from repro.core.plans import (
    NonStandardChunkPlan,
    StandardChunkPlan,
    clear_plan_caches,
    get_nonstandard_plan,
    get_standard_plan,
    plan_cache_info,
    plans_enabled,
    set_plans_enabled,
    use_plans,
)
from repro.core.shiftsplit1d import (
    AxisShiftSplit,
    axis_shift_split,
    shift_target_indices,
    split_contributions,
    split_weights,
)
from repro.core.standard_ops import (
    apply_chunk_standard,
    apply_chunk_standard_uncached,
    chunk_axis_maps,
    contribution_tensor,
    extract_region_standard,
    extract_region_transform_standard,
    extract_region_transform_standard_uncached,
    shift_split_region_counts,
)

__all__ = [
    "AxisShiftSplit",
    "NonStandardChunkPlan",
    "StandardChunkPlan",
    "apply_chunk_nonstandard",
    "apply_chunk_nonstandard_uncached",
    "apply_chunk_standard",
    "apply_chunk_standard_uncached",
    "axis_shift_split",
    "chunk_axis_maps",
    "clear_plan_caches",
    "contribution_tensor",
    "extract_region_nonstandard",
    "extract_region_standard",
    "extract_region_transform_standard",
    "extract_region_transform_standard_uncached",
    "get_nonstandard_plan",
    "get_standard_plan",
    "plan_cache_info",
    "plans_enabled",
    "set_plans_enabled",
    "shift_regions_nonstandard",
    "shift_split_counts_nonstandard",
    "shift_split_region_counts",
    "shift_target_indices",
    "split_contributions",
    "split_contributions_nonstandard",
    "split_weights",
    "split_weights_nonstandard",
    "use_plans",
]
