"""The paper's primary contribution: the SHIFT and SPLIT operations,
their multidimensional forms, and their inverses."""

from repro.core.nonstandard_ops import (
    apply_chunk_nonstandard,
    extract_region_nonstandard,
    shift_regions_nonstandard,
    shift_split_counts_nonstandard,
    split_contributions_nonstandard,
)
from repro.core.shiftsplit1d import (
    AxisShiftSplit,
    axis_shift_split,
    shift_target_indices,
    split_contributions,
    split_weights,
)
from repro.core.standard_ops import (
    apply_chunk_standard,
    chunk_axis_maps,
    contribution_tensor,
    extract_region_standard,
    extract_region_transform_standard,
    shift_split_region_counts,
)

__all__ = [
    "AxisShiftSplit",
    "apply_chunk_nonstandard",
    "apply_chunk_standard",
    "axis_shift_split",
    "chunk_axis_maps",
    "contribution_tensor",
    "extract_region_nonstandard",
    "extract_region_standard",
    "extract_region_transform_standard",
    "shift_regions_nonstandard",
    "shift_split_counts_nonstandard",
    "shift_split_region_counts",
    "shift_target_indices",
    "split_contributions",
    "split_contributions_nonstandard",
    "split_weights",
]
