"""Plan-compiled SHIFT-SPLIT: cached chunk plans for both forms.

Applying a chunk re-derives, on every call, structure that depends only
on the chunk's *geometry*: the per-axis SHIFT-SPLIT mappings of
:mod:`repro.core.shiftsplit1d`, the selectors that carve the
contribution tensor into its SHIFT block and per-axis SPLIT fans, and —
for tiled stores — the per-tile index arithmetic of every region call.
All chunks of one ``(domain, chunk)`` grid share the per-axis structure
entirely (the separable factoring of the standard form means a 1024²
load with 64² chunks needs only 16 distinct per-axis mappings, not
256), and a chunk at a fixed translation reuses *everything* across
repeated loads and batch updates.

This module compiles that structure once into a :class:`StandardChunkPlan`
/ :class:`NonStandardChunkPlan`, memoised in a thread-safe LRU keyed by
``(domain_shape, chunk_shape, translation)``.  Applying a plan is pure
numpy: one fancy gather + one multiply builds the contribution tensor,
and each region is replayed through a
:class:`~repro.storage.scatter.CompiledRegion` — zero per-call
``np.unique``, recursion, or tuple-loop overhead.  The compiled path
visits tiles in exactly the order the interpreted path does, so block
I/O counts (the paper's currency) are **identical**; and because every
SHIFT/SPLIT weight is a signed power of two, the results are
**bit-identical** too.

The cache is enabled by default; set ``REPRO_DISABLE_PLANS=1`` (or use
:func:`use_plans`) to fall back to the interpreted path, e.g. for the
uncached baseline of ``benchmarks/bench_kernel_speed.py``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.tracer import get_tracer

from repro.core.shiftsplit1d import AxisShiftSplit, axis_shift_split
from repro.storage.scatter import AxisTileGroups, CompiledRegion, group_axis_indices
from repro.tiling.onedim import OneDimTiling
from repro.tiling.standard import StandardTiling
from repro.util.bits import ilog2
from repro.wavelet.keys import NonStandardKey

__all__ = [
    "NonStandardChunkPlan",
    "StandardChunkPlan",
    "cached_axis_map",
    "clear_plan_caches",
    "get_nonstandard_plan",
    "get_standard_plan",
    "plan_cache_info",
    "plan_cache_stats",
    "plans_enabled",
    "set_plans_enabled",
    "use_plans",
]

_DISABLE_ENV = "REPRO_DISABLE_PLANS"
_TRUTHY = {"1", "true", "yes", "on"}

_plans_enabled = os.environ.get(_DISABLE_ENV, "").strip().lower() not in _TRUTHY


def plans_enabled() -> bool:
    """Whether SHIFT-SPLIT applications go through compiled plans."""
    return _plans_enabled


def set_plans_enabled(enabled: bool) -> bool:
    """Set the global plan switch; returns the previous value."""
    global _plans_enabled
    previous = _plans_enabled
    _plans_enabled = bool(enabled)
    return previous


@contextmanager
def use_plans(enabled: bool):
    """Context manager scoping the global plan switch."""
    previous = set_plans_enabled(enabled)
    try:
        yield
    finally:
        set_plans_enabled(previous)


# ----------------------------------------------------------------------
# thread-safe LRU for whole-chunk plans
# ----------------------------------------------------------------------


class _PlanLRU:
    """A small thread-safe LRU keyed by chunk geometry.

    ``get_or_build`` releases the lock while building, so two threads
    racing on the same cold key may build the (pure, identical) plan
    twice; the second build simply replaces the first.  Besides the
    hit/miss/eviction tallies the cache accounts its compile cost
    (``builds`` / ``build_seconds``) and opens a ``plans.compile``
    span per build when tracing is enabled, so plan compilation shows
    up in traces as a distinct phase rather than vanishing into
    whatever operation first needed the plan.
    """

    def __init__(self, capacity: int, name: str = "plans") -> None:
        self._capacity = capacity  # guarded-by: _lock
        self._name = name
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self.builds = 0  # guarded-by: _lock
        self.build_seconds = 0.0  # guarded-by: _lock

    @property
    def capacity(self) -> int:
        with self._lock:
            return self._capacity

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        with self._lock:
            self._capacity = capacity
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_build(self, key: tuple, build: Callable[[], object]):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
        started = time.perf_counter()
        with get_tracer().span("plans.compile", cache=self._name, key=repr(key)):
            entry = build()
        elapsed = time.perf_counter() - started
        with self._lock:
            self.builds += 1
            self.build_seconds += elapsed
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> Dict[str, float]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "builds": self.builds,
                "build_seconds": self.build_seconds,
            }


_STANDARD_PLANS = _PlanLRU(capacity=1024, name="standard")
_NONSTANDARD_PLANS = _PlanLRU(capacity=1024, name="nonstandard")


# ----------------------------------------------------------------------
# per-axis caches (shared across every chunk of a grid)
# ----------------------------------------------------------------------


@lru_cache(maxsize=65536)
def cached_axis_map(size: int, chunk: int, translation: int) -> AxisShiftSplit:
    """Memoised :func:`~repro.core.shiftsplit1d.axis_shift_split`.

    A ``(N/M)^d``-chunk grid has only ``N/M`` distinct per-axis maps per
    axis extent, so this cache turns per-chunk map construction into a
    dictionary hit for all but the first chunk of each column/row.
    """
    return axis_shift_split(size, chunk, translation)


@lru_cache(maxsize=65536)
def _cached_axis_inverse_basis(
    size: int, chunk: int, translation: int
) -> np.ndarray:
    """Per-axis inverse SHIFT-SPLIT basis (Section 5.4, Lemma 1).

    Row ``i`` reconstructs chunk-transform entry ``i`` from the gathered
    global coefficients: pass-through for SHIFT entries, signed path
    weights for the average row.
    """
    mp = cached_axis_map(size, chunk, translation)
    basis = np.zeros((mp.chunk, mp.num_entries), dtype=np.float64)
    shift = mp.shift_slice()
    basis[mp.source[shift], np.arange(mp.num_shift)] = 1.0
    split = mp.split_slice()
    basis[0, split] = mp.inverse_weight[split]
    basis.setflags(write=False)
    return basis


@lru_cache(maxsize=65536)
def _cached_axis_groups(
    extent: int, chunk: int, translation: int, block_edge: int, kind: str
) -> AxisTileGroups:
    """Tile-grouped per-axis targets of one region kind.

    ``kind`` selects the slice of the axis map the region covers:
    ``"shift"`` (the ``M - 1`` pure-SHIFT entries), ``"split"`` (the
    path details plus the average) or ``"full"`` (all entries).
    """
    mp = cached_axis_map(extent, chunk, translation)
    if kind == "shift":
        selector = mp.shift_slice()
    elif kind == "split":
        selector = mp.split_slice()
    elif kind == "full":
        selector = slice(0, mp.num_entries)
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown region kind {kind!r}")
    tiling = OneDimTiling(extent, block_edge)
    return group_axis_indices(tiling, mp.target[selector])


def _kind_offset(mp: AxisShiftSplit, kind: str) -> int:
    return mp.num_shift if kind == "split" else 0


def _kind_selector(mp: AxisShiftSplit, kind: str) -> slice:
    if kind == "shift":
        return mp.shift_slice()
    if kind == "split":
        return mp.split_slice()
    return slice(0, mp.num_entries)


# ----------------------------------------------------------------------
# standard form
# ----------------------------------------------------------------------


class _PlanRegion:
    """One cross-product region of a standard chunk plan.

    ``kinds`` names, per axis, which slice of the axis map the region
    covers; compiled scatters are memoised per tile ``block_edge``.
    """

    __slots__ = ("kinds", "selectors", "targets", "is_shift", "_scatters")

    def __init__(
        self,
        kinds: Tuple[str, ...],
        selectors: Tuple[slice, ...],
        targets: List[np.ndarray],
        is_shift: bool,
    ) -> None:
        self.kinds = kinds
        self.selectors = selectors
        self.targets = targets
        self.is_shift = is_shift
        self._scatters: Dict[int, CompiledRegion] = {}


class StandardChunkPlan:
    """Everything needed to apply/extract one standard-form chunk.

    Holds the per-axis maps, the precomputed source-gather selector and
    weight tensor (one multiply builds the whole contribution tensor),
    the region decomposition of :func:`apply_chunk_standard` (the SHIFT
    block plus ``d`` disjoint SPLIT fans), and — lazily, per tile
    geometry — the compiled per-tile scatters.
    """

    __slots__ = (
        "domain_shape",
        "chunk_shape",
        "grid_position",
        "maps",
        "src_ix",
        "weight_tensor",
        "tensor_shape",
        "regions",
        "full_region",
        "inverse_bases",
    )

    def __init__(
        self,
        domain_shape: Tuple[int, ...],
        chunk_shape: Tuple[int, ...],
        grid_position: Tuple[int, ...],
    ) -> None:
        self.domain_shape = domain_shape
        self.chunk_shape = chunk_shape
        self.grid_position = grid_position
        self.maps = tuple(
            cached_axis_map(extent, chunk, translation)
            for extent, chunk, translation in zip(
                domain_shape, chunk_shape, grid_position
            )
        )
        self.src_ix = np.ix_(*[mp.source for mp in self.maps])
        self.tensor_shape = tuple(mp.num_entries for mp in self.maps)
        ndim = len(self.maps)
        weight = self.maps[0].weight.reshape(
            (-1,) + (1,) * (ndim - 1)
        ).copy()
        for axis in range(1, ndim):
            shape = [1] * ndim
            shape[axis] = self.maps[axis].weight.size
            weight = weight * self.maps[axis].weight.reshape(shape)
        self.weight_tensor = np.ascontiguousarray(
            np.broadcast_to(weight, self.tensor_shape)
        )
        self.regions = self._build_regions()
        self.full_region = _PlanRegion(
            kinds=("full",) * ndim,
            selectors=tuple(slice(0, mp.num_entries) for mp in self.maps),
            targets=[mp.target for mp in self.maps],
            is_shift=False,
        )
        self.inverse_bases = tuple(
            _cached_axis_inverse_basis(extent, chunk, translation)
            for extent, chunk, translation in zip(
                domain_shape, chunk_shape, grid_position
            )
        )

    def _build_regions(self) -> Tuple[_PlanRegion, ...]:
        ndim = len(self.maps)
        regions: List[_PlanRegion] = []
        if all(mp.num_shift > 0 for mp in self.maps):
            regions.append(
                _PlanRegion(
                    kinds=("shift",) * ndim,
                    selectors=tuple(mp.shift_slice() for mp in self.maps),
                    targets=[
                        mp.target[mp.shift_slice()] for mp in self.maps
                    ],
                    is_shift=True,
                )
            )
        for split_axis in range(ndim):
            kinds = tuple(
                "shift"
                if axis < split_axis
                else ("split" if axis == split_axis else "full")
                for axis in range(ndim)
            )
            # A leading pure-SHIFT axis with no SHIFT entries empties
            # the whole region (matches the interpreted path's
            # ``block.size == 0`` skip).
            if any(
                kind == "shift" and mp.num_shift == 0
                for kind, mp in zip(kinds, self.maps)
            ):
                continue
            selectors = tuple(
                _kind_selector(mp, kind)
                for kind, mp in zip(kinds, self.maps)
            )
            regions.append(
                _PlanRegion(
                    kinds=kinds,
                    selectors=selectors,
                    targets=[
                        mp.target[selector]
                        for mp, selector in zip(self.maps, selectors)
                    ],
                    is_shift=False,
                )
            )
        return tuple(regions)

    # ------------------------------------------------------------------

    def contributions(
        self, chunk_hat: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Flat contribution tensor of a transformed chunk.

        One gather plus one in-place multiply; every weight is a signed
        power of two, so the result is bit-identical to the interpreted
        per-axis broadcasting.  ``out`` (a flat float64 buffer of the
        tensor's size) receives the product directly — bulk loaders
        pass a shared-memory view to skip one copy per chunk.
        """
        gathered = chunk_hat[self.src_ix]
        if out is not None:
            np.multiply(
                gathered,
                self.weight_tensor,
                out=out.reshape(gathered.shape),
            )
            return out
        np.multiply(gathered, self.weight_tensor, out=gathered)
        return gathered.reshape(-1)

    def _tiled_target(
        self, store
    ) -> Optional[Tuple[object, StandardTiling]]:
        tiling = getattr(store, "tiling", None)
        if (
            isinstance(tiling, StandardTiling)
            and hasattr(store, "tile_store")
            and tiling.shape == self.domain_shape
        ):
            return store.tile_store, tiling
        return None

    def compiled_region(
        self, region: _PlanRegion, block_edge: int
    ) -> CompiledRegion:
        """The region's compiled scatter for tile edge ``block_edge``."""
        compiled = region._scatters.get(block_edge)
        if compiled is None:
            groups = [
                _cached_axis_groups(
                    extent, chunk, translation, block_edge, kind
                )
                for extent, chunk, translation, kind in zip(
                    self.domain_shape,
                    self.chunk_shape,
                    self.grid_position,
                    region.kinds,
                )
            ]
            offsets = [
                _kind_offset(mp, kind)
                for mp, kind in zip(self.maps, region.kinds)
            ]
            compiled = CompiledRegion.from_axis_groups(
                groups, offsets, self.tensor_shape, block_edge
            )
            region._scatters[block_edge] = compiled
        return compiled

    def iter_compiled(
        self, tiling: StandardTiling
    ) -> Iterator[Tuple[bool, CompiledRegion]]:
        """``(is_shift, compiled)`` per region, in application order."""
        for region in self.regions:
            yield region.is_shift, self.compiled_region(
                region, tiling.block_edge
            )

    # ------------------------------------------------------------------

    def apply(self, store, chunk_hat: np.ndarray, fresh: bool = True) -> None:  # lint: allow=flag-hygiene (overwrite-vs-accumulate mode, not a feature toggle)
        """Push a transformed chunk into ``store`` (SHIFT + SPLIT)."""
        self.apply_contributions(store, self.contributions(chunk_hat), fresh)

    def apply_contributions(
        self, store, tensor_flat: np.ndarray, fresh: bool = True  # lint: allow=flag-hygiene (overwrite-vs-accumulate mode, not a feature toggle)
    ) -> None:
        """Apply a precomputed flat contribution tensor.

        On a tiled standard store this replays the compiled per-tile
        scatters; any other store goes through its generic region
        interface with the same blocks in the same order, so I/O
        accounting is unchanged either way.
        """
        tiled = self._tiled_target(store)
        if tiled is not None:
            tile_store, tiling = tiled
            for is_shift, compiled in self.iter_compiled(tiling):
                compiled.scatter(
                    tile_store,
                    tensor_flat,
                    accumulate=(not fresh) or not is_shift,
                )
            return
        tensor = tensor_flat.reshape(self.tensor_shape)
        for region in self.regions:
            block = tensor[region.selectors]
            if fresh and region.is_shift:
                store.set_region(region.targets, block)
            else:
                store.add_region(region.targets, block)

    def gather_transform(self, store) -> np.ndarray:
        """Read the chunk's full SHIFT-SPLIT footprint from ``store``."""
        tiled = self._tiled_target(store)
        if tiled is None:
            return store.read_region(self.full_region.targets)
        tile_store, tiling = tiled
        out = np.zeros(self.tensor_shape, dtype=np.float64)
        compiled = self.compiled_region(self.full_region, tiling.block_edge)
        compiled.gather(tile_store, out.reshape(-1))
        return out

    def extract_transform(self, store) -> np.ndarray:
        """The chunk's own standard transform, rebuilt from the global
        coefficients (inverse SHIFT-SPLIT, Section 5.4)."""
        gathered = self.gather_transform(store)
        for axis, basis in enumerate(self.inverse_bases):
            gathered = np.moveaxis(
                np.tensordot(basis, gathered, axes=([1], [axis])), 0, axis
            )
        return gathered


def get_standard_plan(
    domain_shape: Sequence[int],
    chunk_shape: Sequence[int],
    grid_position: Sequence[int],
) -> StandardChunkPlan:
    """The memoised :class:`StandardChunkPlan` of one chunk geometry."""
    domain = tuple(int(extent) for extent in domain_shape)
    chunk = tuple(int(extent) for extent in chunk_shape)
    position = tuple(int(g) for g in grid_position)
    if len(domain) != len(chunk) or len(domain) != len(position):
        raise ValueError("domain, chunk and grid position ranks must match")
    key = (domain, chunk, position)
    return _STANDARD_PLANS.get_or_build(
        key, lambda: StandardChunkPlan(domain, chunk, position)
    )


# ----------------------------------------------------------------------
# non-standard form
# ----------------------------------------------------------------------


class NonStandardChunkPlan:
    """Cached geometry of one non-standard chunk.

    The SHIFT copy regions and the SPLIT path (keys, per-key weights
    relative to the chunk average, level gaps for the crest buffer) are
    pure geometry; only the chunk average varies per application.
    """

    __slots__ = (
        "size",
        "chunk_edge",
        "grid_position",
        "ndim",
        "shift_regions",
        "split_keys",
        "split_weights",
        "split_level_gaps",
        "scaling_weight",
    )

    def __init__(
        self, size: int, chunk_edge: int, grid_position: Tuple[int, ...]
    ) -> None:
        # Imported lazily: nonstandard_ops imports this module at top
        # level for its plan dispatch.
        from repro.core.nonstandard_ops import (
            shift_regions_nonstandard,
            split_weights_nonstandard,
        )

        self.size = size
        self.chunk_edge = chunk_edge
        self.grid_position = grid_position
        self.ndim = len(grid_position)
        self.shift_regions = tuple(
            shift_regions_nonstandard(size, chunk_edge, grid_position)
        )
        levels, nodes, masks, weights, scaling = split_weights_nonstandard(
            size, chunk_edge, grid_position
        )
        self.split_keys = tuple(
            NonStandardKey(int(level), tuple(int(k) for k in node), int(mask))
            for level, node, mask in zip(levels, nodes, masks)
        )
        self.split_weights = weights
        chunk_level = ilog2(chunk_edge)
        self.split_level_gaps = tuple(
            int(level) - chunk_level for level in levels
        )
        self.scaling_weight = scaling

    def split_pairs(
        self, average: float
    ) -> Iterator[Tuple[NonStandardKey, float]]:
        """``(key, delta)`` per SPLIT contribution of ``average``."""
        deltas = average * self.split_weights
        return zip(self.split_keys, deltas.tolist())

    def apply(self, store, chunk_hat: np.ndarray, fresh: bool = True) -> None:  # lint: allow=flag-hygiene (overwrite-vs-accumulate mode, not a feature toggle)
        """Push a transformed cubic chunk into ``store``."""
        for level, mask, start, chunk_slices in self.shift_regions:
            values = chunk_hat[chunk_slices]
            if fresh:
                store.set_details(level, mask, start, values)
            else:
                existing = store.read_details(
                    level, mask, start, values.shape
                )
                store.set_details(level, mask, start, existing + values)
        average = float(chunk_hat[(0,) * self.ndim])
        for key, delta in self.split_pairs(average):
            store.add_detail(key, delta)
        store.add_scaling(average * self.scaling_weight)


def get_nonstandard_plan(
    size: int, chunk_edge: int, grid_position: Sequence[int]
) -> NonStandardChunkPlan:
    """The memoised :class:`NonStandardChunkPlan` of one chunk geometry."""
    position = tuple(int(g) for g in grid_position)
    key = (int(size), int(chunk_edge), position)
    return _NONSTANDARD_PLANS.get_or_build(
        key, lambda: NonStandardChunkPlan(int(size), int(chunk_edge), position)
    )


# ----------------------------------------------------------------------
# introspection
# ----------------------------------------------------------------------


def plan_cache_info() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counters of every plan-layer cache."""
    return {
        "standard_plans": _STANDARD_PLANS.info(),
        "nonstandard_plans": _NONSTANDARD_PLANS.info(),
        "axis_maps": cached_axis_map.cache_info()._asdict(),
        "axis_groups": _cached_axis_groups.cache_info()._asdict(),
        "axis_inverse_bases": _cached_axis_inverse_basis.cache_info()._asdict(),
    }


def plan_cache_stats() -> Dict[str, Dict[str, float]]:
    """Observability view of the plan layer: per-cache LRU hit/miss/
    eviction counters plus compile cost (``builds`` and cumulative
    ``build_seconds``), and whether the plan path is enabled at all.

    This is what the service metrics and the traced benchmarks report;
    :func:`plan_cache_info` remains the raw-cache-introspection name.
    """
    stats = plan_cache_info()
    stats["enabled"] = {"plans": int(plans_enabled())}
    return stats


def clear_plan_caches() -> None:
    """Drop every cached plan and per-axis artefact (benchmarks use this
    to measure cold-cache behaviour)."""
    from repro.core.nonstandard_ops import _split_weights_cached

    _STANDARD_PLANS.clear()
    _NONSTANDARD_PLANS.clear()
    cached_axis_map.cache_clear()
    _cached_axis_groups.cache_clear()
    _cached_axis_inverse_basis.cache_clear()
    _split_weights_cached.cache_clear()
