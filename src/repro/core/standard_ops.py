"""Multidimensional SHIFT-SPLIT for the standard form (paper, Section 4.1)
and its inverse (Section 5.4).

In the standard decomposition every coefficient factors per dimension,
so a ``d``-dimensional chunk sustains the per-axis mappings of
:mod:`repro.core.shiftsplit1d` independently along each axis: a chunk
coefficient whose per-axis components are all details is purely
SHIFTed (``(M-1)^d`` coefficients), while every component that is the
per-axis average fans out over that axis' SPLIT path —
``(M + n - m)^d - (M - 1)^d`` contributions in total.

The application functions below work against any object implementing
the standard-store region interface (``set_region`` / ``add_region`` /
``read_region`` — both the dense and the tiled stores do).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.plans import StandardChunkPlan, get_standard_plan, plans_enabled
from repro.core.shiftsplit1d import AxisShiftSplit, axis_shift_split
from repro.util.validation import require_power_of_two_shape
from repro.wavelet.standard import standard_dwt, standard_idwt

__all__ = [
    "chunk_axis_maps",
    "contribution_tensor",
    "apply_chunk_standard",
    "apply_chunk_standard_uncached",
    "extract_region_standard",
    "extract_region_transform_standard",
    "extract_region_transform_standard_uncached",
    "shift_split_region_counts",
]


def chunk_axis_maps(
    domain_shape: Sequence[int],
    chunk_shape: Sequence[int],
    grid_position: Sequence[int],
) -> List[AxisShiftSplit]:
    """Per-axis SHIFT-SPLIT mappings of the chunk at ``grid_position``.

    ``grid_position`` is measured in chunks (the chunk covers cells
    ``[g_i * M_i, (g_i + 1) * M_i)`` along axis ``i``).
    """
    domain_shape = require_power_of_two_shape(domain_shape, "domain_shape")
    chunk_shape = require_power_of_two_shape(chunk_shape, "chunk_shape")
    if len(domain_shape) != len(chunk_shape) or len(domain_shape) != len(
        grid_position
    ):
        raise ValueError("domain, chunk and grid position ranks must match")
    return [
        axis_shift_split(extent, chunk_extent, int(translation))
        for extent, chunk_extent, translation in zip(
            domain_shape, chunk_shape, grid_position
        )
    ]


def contribution_tensor(
    chunk_hat: np.ndarray, maps: Sequence[AxisShiftSplit]
) -> np.ndarray:
    """The full contribution tensor of a transformed chunk.

    Entry ``(p_1..p_d)`` is the value this chunk adds to the global
    coefficient at ``(maps[0].target[p_1], ...)``: the chunk-transform
    entry selected by the per-axis sources times the product of
    per-axis weights.
    """
    gathered = chunk_hat[np.ix_(*[mp.source for mp in maps])]
    for axis, mp in enumerate(maps):
        shape = [1] * len(maps)
        shape[axis] = mp.weight.size
        gathered = gathered * mp.weight.reshape(shape)
    return gathered


def apply_chunk_standard(
    store,
    chunk: np.ndarray,
    grid_position: Sequence[int],
    fresh: bool = True,
    chunk_is_transformed: bool = False,
    plan: Optional[StandardChunkPlan] = None,
) -> None:
    """Push one chunk into the global standard-form transform.

    Transforms the chunk in memory, SHIFTs its details into place and
    SPLITs its average into path contributions (Example 1 / Example 2
    of the paper).

    Unless plans are disabled (:mod:`repro.core.plans`), the chunk goes
    through a cached :class:`~repro.core.plans.StandardChunkPlan` —
    bit-identical results and identical I/O counts, minus the per-call
    index recomputation.  Pass ``plan`` to skip even the cache lookup.

    Parameters
    ----------
    store:
        Standard-store region interface; its ``shape`` is the domain.
    chunk:
        The chunk's data (or its standard transform when
        ``chunk_is_transformed``).
    grid_position:
        Chunk coordinates within the chunk grid.
    fresh:
        When True (bulk transformation of data that was zero), the
        purely SHIFTed block is written without reading — those
        positions belong to this chunk alone.  When False (batch
        *update* of existing data, Example 2), every target
        accumulates.
    plan:
        Optional pre-fetched plan for this exact geometry.
    """
    chunk_hat = chunk if chunk_is_transformed else standard_dwt(chunk)
    if plan is None and plans_enabled():
        require_power_of_two_shape(store.shape, "store shape")
        require_power_of_two_shape(chunk_hat.shape, "chunk shape")
        plan = get_standard_plan(store.shape, chunk_hat.shape, grid_position)
    if plan is not None:
        plan.apply(store, chunk_hat, fresh=fresh)
        return
    apply_chunk_standard_uncached(
        store, chunk_hat, grid_position, fresh=fresh, chunk_is_transformed=True
    )


def apply_chunk_standard_uncached(
    store,
    chunk: np.ndarray,
    grid_position: Sequence[int],
    fresh: bool = True,
    chunk_is_transformed: bool = False,
) -> None:
    """The interpreted (plan-free) :func:`apply_chunk_standard`.

    Re-derives every per-axis mapping and region grouping on each call;
    kept as the uncached baseline for ``bench_kernel_speed.py`` and as
    the reference implementation the plan path is verified against.
    """
    chunk_hat = chunk if chunk_is_transformed else standard_dwt(chunk)
    maps = chunk_axis_maps(store.shape, chunk_hat.shape, grid_position)
    tensor = contribution_tensor(chunk_hat, maps)
    ndim = len(maps)

    shift_selectors = [mp.shift_slice() for mp in maps]
    if all(mp.num_shift > 0 for mp in maps):
        targets = [mp.target[sel] for mp, sel in zip(maps, shift_selectors)]
        block = tensor[tuple(shift_selectors)]
        if fresh:
            store.set_region(targets, block)
        else:
            store.add_region(targets, block)

    # The remaining contributions — every entry with at least one SPLIT
    # component — decompose into d disjoint cross products by "first
    # axis that is split".
    for split_axis in range(ndim):
        selectors: List[slice] = []
        for axis, mp in enumerate(maps):
            if axis < split_axis:
                selectors.append(mp.shift_slice())
            elif axis == split_axis:
                selectors.append(mp.split_slice())
            else:
                selectors.append(slice(0, mp.num_entries))
        block = tensor[tuple(selectors)]
        if block.size == 0:
            continue
        targets = [mp.target[sel] for mp, sel in zip(maps, selectors)]
        store.add_region(targets, block)


def _region_grid_position(
    corner: Sequence[int], region_shape: Sequence[int]
) -> List[int]:
    grid_position = []
    for axis, (start, extent) in enumerate(zip(corner, region_shape)):
        if int(start) % extent:
            raise ValueError(
                f"corner[{axis}]={start} is not aligned to extent {extent}"
            )
        grid_position.append(int(start) // extent)
    return grid_position


def extract_region_transform_standard(
    store,
    corner: Sequence[int],
    region_shape: Sequence[int],
) -> np.ndarray:
    """The *transform* of a dyadic region, extracted without inverting.

    Inverse SHIFT gathers the region's own details; inverse SPLIT
    rebuilds the region's per-axis averages from the path-to-root
    coefficients (Lemma 1 per axis).  Returns
    ``standard_dwt(data[region])`` computed from ``(M + log(N/M))^d``
    stored coefficients — the wavelet-domain selection that stays in
    the wavelet domain.

    With plans enabled the gather replays a compiled per-tile index
    plan (same I/O, no per-call grouping).
    """
    region_shape = require_power_of_two_shape(region_shape, "region_shape")
    grid_position = _region_grid_position(corner, region_shape)
    if plans_enabled():
        require_power_of_two_shape(store.shape, "store shape")
        plan = get_standard_plan(store.shape, region_shape, grid_position)
        return plan.extract_transform(store)
    return extract_region_transform_standard_uncached(
        store, corner, region_shape
    )


def extract_region_transform_standard_uncached(
    store,
    corner: Sequence[int],
    region_shape: Sequence[int],
) -> np.ndarray:
    """The interpreted (plan-free) region-transform extraction."""
    region_shape = require_power_of_two_shape(region_shape, "region_shape")
    grid_position = _region_grid_position(corner, region_shape)
    maps = chunk_axis_maps(store.shape, region_shape, grid_position)
    gathered = store.read_region([mp.target for mp in maps])
    for axis, mp in enumerate(maps):
        basis = np.zeros((mp.chunk, mp.num_entries), dtype=np.float64)
        shift = mp.shift_slice()
        basis[mp.source[shift], np.arange(mp.num_shift)] = 1.0
        split = mp.split_slice()
        basis[0, split] = mp.inverse_weight[split]
        gathered = np.moveaxis(
            np.tensordot(basis, gathered, axes=([1], [axis])), 0, axis
        )
    return gathered


def extract_region_standard(
    store,
    corner: Sequence[int],
    region_shape: Sequence[int],
) -> np.ndarray:
    """Reconstruct a dyadic region from the global transform
    (Result 6, standard form).

    :func:`extract_region_transform_standard` followed by the inverse
    DWT — the region's *data*.
    """
    return standard_idwt(
        extract_region_transform_standard(store, corner, region_shape)
    )


def shift_split_region_counts(
    domain_shape: Sequence[int],
    chunk_shape: Sequence[int],
) -> dict:
    """Analytic touch counts for one chunk (paper, Section 4.1).

    Returns shift/split/total coefficient counts — the quantities in
    Table 1's numerators and the per-chunk terms of Result 1.
    """
    maps = chunk_axis_maps(
        domain_shape, chunk_shape, [0] * len(domain_shape)
    )
    shift = 1
    total = 1
    for mp in maps:
        shift *= mp.num_shift
        total *= mp.num_entries
    return {"shift": shift, "split": total - shift, "total": total}
