"""Dimension schemas for the OLAP facade.

The paper's datasets have *named, physical* dimensions (latitude,
longitude, altitude, time) that queries address in domain units, while
the wavelet machinery wants power-of-two integer grids.  A
:class:`Dimension` owns that mapping: a name, a grid size, and an
affine coordinate transform, so a query like "latitude 30..60" becomes
a cell range.

For the serving layer a dimension can additionally carry **named
hierarchies** in the spirit of regularly decomposed spaces: every
:class:`Level` splits its parent member into a power-of-two number of
children, so any hierarchy path addresses a *dyadic* cell range — the
shape SHIFT-SPLIT range sums answer at boundary cost (Lemma 2).  A
Slicer-style cut like ``time@ymd:2.1`` resolves through
:meth:`Dimension.path_to_range` and a drill-down enumerates the
children of the cut path, each again a dyadic box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.bits import ilog2, is_power_of_two

__all__ = [
    "Dimension",
    "Hierarchy",
    "Level",
    "SchemaError",
    "binary_hierarchy",
]


class SchemaError(ValueError):
    """A cut, path or hierarchy that does not fit the dimension.

    Raised with a human-readable message (the serving layer maps it to
    HTTP 400) instead of letting malformed paths surface as index
    errors deep in the wavelet machinery.
    """


@dataclass(frozen=True)
class Level:
    """One level of a hierarchy: each parent splits into ``fanout``
    children.

    ``fanout`` must be a power of two so that every member of the
    level spans a dyadic cell range.
    """

    name: str
    fanout: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("level name must be non-empty")
        if self.fanout < 2 or not is_power_of_two(self.fanout):
            raise SchemaError(
                f"level {self.name!r} fanout must be a power of two "
                f">= 2, got {self.fanout}"
            )


@dataclass(frozen=True)
class Hierarchy:
    """A named drill path: levels coarse-to-fine, dyadic at every step.

    The product of the level fanouts must equal the dimension size, so
    a full path addresses exactly one grid cell and every prefix
    addresses a dyadic range of cells.
    """

    name: str
    levels: Tuple[Level, ...]

    def __init__(self, name: str, levels: Sequence[Level]) -> None:
        if not name:
            raise SchemaError("hierarchy name must be non-empty")
        if not levels:
            raise SchemaError(f"hierarchy {name!r} needs at least one level")
        names = [level.name for level in levels]
        if len(set(names)) != len(names):
            raise SchemaError(
                f"hierarchy {name!r} has duplicate level names {names}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "levels", tuple(levels))

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def leaf_count(self) -> int:
        """Number of cells a full path addresses below the root."""
        count = 1
        for level in self.levels:
            count *= level.fanout
        return count

    def level_index(self, level_name: str) -> int:
        for index, level in enumerate(self.levels):
            if level.name == level_name:
                return index
        raise SchemaError(
            f"hierarchy {self.name!r} has no level {level_name!r}; "
            f"have {[level.name for level in self.levels]}"
        )

    def cells_below(self, depth: int) -> int:
        """Grid cells spanned by one member at path depth ``depth``."""
        cells = self.leaf_count
        for level in self.levels[:depth]:
            cells //= level.fanout
        return cells

    def path_to_cells(self, path: Sequence[int]) -> Tuple[int, int]:
        """Inclusive cell range of the member addressed by ``path``.

        ``path`` lists one member ordinal per level, coarse-to-fine;
        a short path addresses the whole subtree.  Raises
        :class:`SchemaError` for over-long paths or out-of-range
        ordinals.
        """
        if len(path) > self.depth:
            raise SchemaError(
                f"hierarchy {self.name!r} path {list(path)} is deeper "
                f"than its {self.depth} level(s)"
            )
        low = 0
        width = self.leaf_count
        for depth, raw in enumerate(path):
            level = self.levels[depth]
            try:
                ordinal = int(raw)
            except (TypeError, ValueError):
                raise SchemaError(
                    f"hierarchy {self.name!r} path component {raw!r} "
                    f"at level {level.name!r} is not an integer"
                ) from None
            if not 0 <= ordinal < level.fanout:
                raise SchemaError(
                    f"hierarchy {self.name!r} level {level.name!r} has "
                    f"{level.fanout} members; path ordinal {ordinal} "
                    f"is out of range"
                )
            width //= level.fanout
            low += ordinal * width
        return low, low + width - 1

    def cells_to_path(self, low: int, high: int) -> Tuple[int, ...]:
        """Inverse of :meth:`path_to_cells` for an exact member range.

        Raises :class:`SchemaError` when ``[low, high]`` is not the
        cell range of any single member of this hierarchy.
        """
        path: List[int] = []
        base = 0
        width = self.leaf_count
        if low == 0 and high == width - 1:
            return ()
        for level in self.levels:
            width //= level.fanout
            ordinal = (low - base) // width if width else 0
            base += ordinal * width
            path.append(ordinal)
            if low == base and high == base + width - 1:
                return tuple(path)
        raise SchemaError(
            f"cell range [{low}, {high}] is not a member of "
            f"hierarchy {self.name!r}"
        )

    def to_dict(self) -> dict:
        """JSON-friendly logical-model fragment."""
        return {
            "name": self.name,
            "depth": self.depth,
            "levels": [
                {"name": level.name, "fanout": level.fanout}
                for level in self.levels
            ],
        }


def binary_hierarchy(size: int) -> Hierarchy:
    """The implicit hierarchy of a bare axis: one binary split per
    wavelet level, mirroring the decomposition structure itself."""
    if size < 2:
        raise SchemaError(
            f"a hierarchy needs at least two cells, got size {size}"
        )
    levels = tuple(
        Level(f"h{depth}", 2) for depth in range(ilog2(size))
    )
    return Hierarchy("binary", levels)


@dataclass(frozen=True)
class Dimension:
    """One named axis of a data cube.

    Attributes
    ----------
    name:
        Axis name used in queries (e.g. ``"latitude"``).
    size:
        Number of grid cells (a power of two).
    low, high:
        Domain values of the first cell's lower edge and the last
        cell's upper edge; defaults map cell ``i`` to value ``i``.
    label:
        Human-readable name for the logical model (defaults to
        ``name``).
    hierarchies:
        Named drill paths over the axis; every hierarchy's leaf count
        must equal ``size``.  An axis without declared hierarchies
        still answers hierarchical cuts through the implicit
        per-wavelet-level ``"binary"`` hierarchy.
    """

    name: str
    size: int
    low: float = 0.0
    high: float | None = None
    label: str | None = None
    hierarchies: Tuple[Hierarchy, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension name must be non-empty")
        if not is_power_of_two(self.size):
            raise ValueError(
                f"dimension {self.name!r} size must be a power of two, "
                f"got {self.size}"
            )
        if self.high is None:
            object.__setattr__(self, "high", self.low + self.size)
        if self.high <= self.low:
            raise ValueError(
                f"dimension {self.name!r} needs high > low, got "
                f"[{self.low}, {self.high}]"
            )
        if self.label is None:
            object.__setattr__(self, "label", self.name)
        object.__setattr__(self, "hierarchies", tuple(self.hierarchies))
        names = [hierarchy.name for hierarchy in self.hierarchies]
        if len(set(names)) != len(names):
            raise SchemaError(
                f"dimension {self.name!r} has duplicate hierarchy "
                f"names {names}"
            )
        for hierarchy in self.hierarchies:
            if hierarchy.leaf_count != self.size:
                raise SchemaError(
                    f"hierarchy {hierarchy.name!r} addresses "
                    f"{hierarchy.leaf_count} cells but dimension "
                    f"{self.name!r} has {self.size}"
                )

    @property
    def cell_width(self) -> float:
        """Domain width of one grid cell."""
        return (self.high - self.low) / self.size

    def to_cell(self, value: float) -> int:
        """Grid cell containing domain ``value`` (clamped to range)."""
        position = int((value - self.low) / self.cell_width)
        return min(max(position, 0), self.size - 1)

    def to_cell_range(self, low: float, high: float) -> Tuple[int, int]:
        """Inclusive cell range covering domain values ``[low, high]``."""
        if high < low:
            raise ValueError(
                f"dimension {self.name!r}: need low <= high, got "
                f"[{low}, {high}]"
            )
        return self.to_cell(low), self.to_cell(high)

    def cell_value(self, cell: int) -> float:
        """Domain value at the centre of ``cell``."""
        if not 0 <= cell < self.size:
            raise ValueError(
                f"dimension {self.name!r}: cell {cell} out of "
                f"[0, {self.size})"
            )
        return self.low + (cell + 0.5) * self.cell_width

    # ------------------------------------------------------------------
    # hierarchies
    # ------------------------------------------------------------------

    def hierarchy(self, name: str | None = None) -> Hierarchy:
        """The named hierarchy (first declared one, or the implicit
        ``"binary"`` hierarchy, when ``name`` is omitted)."""
        if name is None:
            if self.hierarchies:
                return self.hierarchies[0]
            return binary_hierarchy(self.size)
        for hierarchy in self.hierarchies:
            if hierarchy.name == name:
                return hierarchy
        if name == "binary":
            return binary_hierarchy(self.size)
        raise SchemaError(
            f"dimension {self.name!r} has no hierarchy {name!r}; have "
            f"{[h.name for h in self.hierarchies] + ['binary']}"
        )

    def path_to_range(
        self,
        path: Sequence[int],
        hierarchy: str | None = None,
    ) -> Tuple[int, int]:
        """Inclusive cell range of a hierarchy path, round-trip checked.

        Resolves ``path`` through the named (or default) hierarchy and
        validates the result both ways: the range must lie inside the
        dimension's domain and :meth:`Hierarchy.cells_to_path` of the
        range must reproduce the path exactly.  A failure of either
        check raises :class:`SchemaError` with the offending cut —
        malformed paths never surface as index errors downstream.
        """
        resolved = self.hierarchy(hierarchy)
        low, high = resolved.path_to_cells(path)
        if not (0 <= low <= high < self.size):
            raise SchemaError(
                f"dimension {self.name!r} cut {list(path)} resolves to "
                f"cells [{low}, {high}] outside [0, {self.size})"
            )
        round_trip = resolved.cells_to_path(low, high)
        if round_trip != tuple(int(part) for part in path):
            raise SchemaError(
                f"dimension {self.name!r} cut {list(path)} does not "
                f"round-trip through hierarchy {resolved.name!r} "
                f"(got back {list(round_trip)})"
            )
        return low, high

    def to_dict(self) -> dict:
        """JSON-friendly logical-model fragment (Slicer-style)."""
        hierarchies = list(self.hierarchies)
        if not hierarchies and self.size >= 2:
            hierarchies = [binary_hierarchy(self.size)]
        return {
            "name": self.name,
            "label": self.label,
            "size": self.size,
            "domain": [self.low, self.high],
            "cell_width": self.cell_width,
            "default_hierarchy": (
                hierarchies[0].name if hierarchies else None
            ),
            "hierarchies": [h.to_dict() for h in hierarchies],
        }
