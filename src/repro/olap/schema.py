"""Dimension schemas for the OLAP facade.

The paper's datasets have *named, physical* dimensions (latitude,
longitude, altitude, time) that queries address in domain units, while
the wavelet machinery wants power-of-two integer grids.  A
:class:`Dimension` owns that mapping: a name, a grid size, and an
affine coordinate transform, so a query like "latitude 30..60" becomes
a cell range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.util.bits import is_power_of_two

__all__ = ["Dimension"]


@dataclass(frozen=True)
class Dimension:
    """One named axis of a data cube.

    Attributes
    ----------
    name:
        Axis name used in queries (e.g. ``"latitude"``).
    size:
        Number of grid cells (a power of two).
    low, high:
        Domain values of the first cell's lower edge and the last
        cell's upper edge; defaults map cell ``i`` to value ``i``.
    """

    name: str
    size: int
    low: float = 0.0
    high: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension name must be non-empty")
        if not is_power_of_two(self.size):
            raise ValueError(
                f"dimension {self.name!r} size must be a power of two, "
                f"got {self.size}"
            )
        if self.high is None:
            object.__setattr__(self, "high", self.low + self.size)
        if self.high <= self.low:
            raise ValueError(
                f"dimension {self.name!r} needs high > low, got "
                f"[{self.low}, {self.high}]"
            )

    @property
    def cell_width(self) -> float:
        """Domain width of one grid cell."""
        return (self.high - self.low) / self.size

    def to_cell(self, value: float) -> int:
        """Grid cell containing domain ``value`` (clamped to range)."""
        position = int((value - self.low) / self.cell_width)
        return min(max(position, 0), self.size - 1)

    def to_cell_range(self, low: float, high: float) -> Tuple[int, int]:
        """Inclusive cell range covering domain values ``[low, high]``."""
        if high < low:
            raise ValueError(
                f"dimension {self.name!r}: need low <= high, got "
                f"[{low}, {high}]"
            )
        return self.to_cell(low), self.to_cell(high)

    def cell_value(self, cell: int) -> float:
        """Domain value at the centre of ``cell``."""
        if not 0 <= cell < self.size:
            raise ValueError(
                f"dimension {self.name!r}: cell {cell} out of "
                f"[0, {self.size})"
            )
        return self.low + (cell + 0.5) * self.cell_width
