"""Wavelet-domain OLAP algebra: roll-up, slice and dice without
reconstruction.

The paper positions SHIFT-SPLIT in the line of work that evaluates
relational operations *directly in the wavelet domain* (Chakrabarti et
al. [2]); its own Section 5.4 generalises the selection operation.
This module supplies the other classic cube operations, each producing
the *transform* of the derived cube straight from the stored
coefficients:

roll-up (sum over an axis)
    Summing a standard-form cube over axis ``a`` multiplies the
    axis-``a`` smooth component by ``N_a`` and drops every detail
    component — because all Haar details have zero sum.  One hyperplane
    read, no arithmetic on the data.

slice (fix one coordinate)
    Fixing axis ``a`` at position ``x`` contracts the axis with the
    Lemma 1 root path: the slice's transform is the signed sum of
    ``log N_a + 1`` hyperplanes.

dice (select a dyadic sub-box, keep it transformed)
    The inverse SHIFT-SPLIT *without* the final inverse DWT — the
    sub-box's own standard transform, ready for further wavelet-domain
    processing or storage.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.standard_ops import extract_region_transform_standard
from repro.wavelet.tree import WaveletTree

__all__ = [
    "rollup_sum_standard",
    "slice_standard",
    "dice_transform_standard",
]


def _full_axes(shape) -> list:
    return [np.arange(extent, dtype=np.int64) for extent in shape]


def rollup_sum_standard(store, axis: int) -> np.ndarray:
    """Transform of the cube summed over ``axis`` (wavelet-domain
    roll-up).

    Returns the dense ``(d-1)``-dimensional standard transform of
    ``data.sum(axis=axis)``.  Reads one hyperplane — the axis' smooth
    component — of the stored transform.
    """
    shape = store.shape
    if not 0 <= axis < len(shape):
        raise ValueError(f"axis must be in [0, {len(shape)}), got {axis}")
    if len(shape) == 1:
        raise ValueError("cannot roll up the only axis; use a range sum")
    axes = _full_axes(shape)
    axes[axis] = np.asarray([0], dtype=np.int64)
    hyperplane = store.read_region(axes)
    return np.squeeze(hyperplane, axis=axis) * float(shape[axis])


def slice_standard(store, axis: int, position: int) -> np.ndarray:
    """Transform of the cube sliced at ``axis = position``.

    Returns the dense ``(d-1)``-dimensional standard transform of
    ``data.take(position, axis=axis)``.  Reads ``log N_a + 1``
    hyperplanes (the root path of ``position`` along the axis) and
    contracts them with the reconstruction signs.
    """
    shape = store.shape
    if not 0 <= axis < len(shape):
        raise ValueError(f"axis must be in [0, {len(shape)}), got {axis}")
    if len(shape) == 1:
        raise ValueError("cannot slice the only axis; use a point query")
    tree = WaveletTree(shape[axis])
    path = np.asarray(tree.root_path(int(position)), dtype=np.int64)
    signs = np.asarray(
        tree.reconstruction_signs(int(position)), dtype=np.float64
    )
    axes = _full_axes(shape)
    axes[axis] = path
    block = store.read_region(axes)
    block = np.moveaxis(block, axis, -1)
    contracted = block @ signs
    return contracted


def dice_transform_standard(
    store, corner: Sequence[int], region_shape: Sequence[int]
) -> np.ndarray:
    """Transform of a dyadic sub-box, extracted without inverting.

    The wavelet-domain *dice*: the returned array is
    ``standard_dwt(data[corner : corner + region_shape])`` computed by
    inverse SHIFT (detail gathering) and inverse SPLIT (per-axis path
    reconstruction) only — no inverse transform, so the result can be
    re-stored or further processed in the wavelet domain.
    """
    return extract_region_transform_standard(store, corner, region_shape)
