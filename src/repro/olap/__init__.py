"""High-level OLAP facade and wavelet-domain algebra over the
SHIFT-SPLIT machinery."""

from repro.olap.algebra import (
    dice_transform_standard,
    rollup_sum_standard,
    slice_standard,
)
from repro.olap.cube import WaveletCube
from repro.olap.schema import (
    Dimension,
    Hierarchy,
    Level,
    SchemaError,
    binary_hierarchy,
)

__all__ = [
    "Dimension",
    "Hierarchy",
    "Level",
    "SchemaError",
    "WaveletCube",
    "binary_hierarchy",
    "dice_transform_standard",
    "rollup_sum_standard",
    "slice_standard",
]
