"""High-level OLAP facade and wavelet-domain algebra over the
SHIFT-SPLIT machinery."""

from repro.olap.algebra import (
    dice_transform_standard,
    rollup_sum_standard,
    slice_standard,
)
from repro.olap.cube import WaveletCube
from repro.olap.schema import Dimension

__all__ = [
    "Dimension",
    "WaveletCube",
    "dice_transform_standard",
    "rollup_sum_standard",
    "slice_standard",
]
