"""The high-level OLAP facade: a named-dimension wavelet data cube.

This is the "downstream user" API over the paper's machinery: define
dimensions, bulk-load data (or append slabs), then ask range
aggregates, point lookups and window reconstructions in *domain units*
— with every query answered from the wavelet transform through the
tiled store, never from raw data.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.append.appender import StandardAppender
from repro.olap.schema import Dimension
from repro.reconstruct.point import (
    point_query_nonstandard,
    point_query_standard,
)
from repro.reconstruct.rangesum import (
    range_sum_nonstandard,
    range_sum_standard,
)
from repro.reconstruct.region import (
    reconstruct_box_nonstandard,
    reconstruct_box_standard,
)
from repro.storage.iostats import IOStats
from repro.storage.tiled import TiledNonStandardStore, TiledStandardStore
from repro.transform.chunked import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
)

__all__ = ["WaveletCube"]


class WaveletCube:
    """A queryable wavelet-transformed data cube with named dimensions.

    Parameters
    ----------
    dimensions:
        The cube's axes, in storage order.
    block_edge:
        Per-dimension tile edge of the underlying store (Section 3).
    pool_blocks:
        Buffer-pool capacity in blocks.
    grow_dimension:
        Optional name of the dimension that accepts appended slabs
        (the paper's time dimension).  When set, the named dimension's
        ``size`` is interpreted as the *slab thickness* and the cube
        starts empty; otherwise the cube is fixed-size and must be
        loaded with :meth:`load`.
    form:
        ``"standard"`` (default) or ``"nonstandard"`` — the two
        decomposition forms of Section 3.1.  The non-standard form is
        cheaper to compute but compresses range aggregates less well;
        it requires a cubic, fixed-size cube.
    device:
        An existing block device to store coefficients on instead of a
        private one (fixed-size standard form only) — the serving
        layer's shared-arena multi-tenancy.  Requires
        ``block_edge ** ndim`` slots per device block.
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        block_edge: int = 4,
        pool_blocks: int = 64,
        grow_dimension: Optional[str] = None,
        form: str = "standard",
        device=None,
    ) -> None:
        if not dimensions:
            raise ValueError("need at least one dimension")
        names = [dimension.name for dimension in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in {names}")
        if form not in ("standard", "nonstandard"):
            raise ValueError(f"unknown form {form!r}")
        self._dimensions = list(dimensions)
        self._by_name: Dict[str, int] = {
            name: axis for axis, name in enumerate(names)
        }
        self._block_edge = block_edge
        self._pool_blocks = pool_blocks
        self._loaded = False
        self._form = form

        if device is not None and (form != "standard" or grow_dimension):
            raise ValueError(
                "a shared device requires the fixed-size standard form"
            )
        if form == "nonstandard":
            if grow_dimension is not None:
                raise ValueError(
                    "growing cubes need the standard form (the hybrid "
                    "streaming decomposition of Result 5 covers "
                    "unbounded non-standard streams)"
                )
            edges = {dimension.size for dimension in self._dimensions}
            if len(edges) != 1:
                raise ValueError(
                    "the non-standard form requires equal dimension sizes"
                )
            self._appender = None
            self._store = TiledNonStandardStore(
                self._dimensions[0].size,
                len(self._dimensions),
                block_edge=block_edge,
                pool_capacity=pool_blocks,
            )
        elif grow_dimension is None:
            self._appender = None
            self._store = TiledStandardStore(
                tuple(d.size for d in self._dimensions),
                block_edge=block_edge,
                pool_capacity=pool_blocks,
                device=device,
            )
        else:
            if grow_dimension not in self._by_name:
                raise ValueError(
                    f"unknown grow dimension {grow_dimension!r}"
                )
            self._grow_axis = self._by_name[grow_dimension]
            self._appender = StandardAppender(
                tuple(d.size for d in self._dimensions),
                grow_axis=self._grow_axis,
                store_factory=lambda shape, stats: TiledStandardStore(
                    shape,
                    block_edge=block_edge,
                    pool_capacity=pool_blocks,
                    stats=stats,
                ),
            )

    # ------------------------------------------------------------------

    @property
    def dimensions(self) -> Tuple[Dimension, ...]:
        return tuple(self._dimensions)

    @property
    def form(self) -> str:
        """The decomposition form: "standard" or "nonstandard"."""
        return self._form

    @property
    def shape(self) -> Tuple[int, ...]:
        store = self._store_object()
        if self._form == "nonstandard":
            return (store.size,) * store.ndim
        return tuple(store.shape)

    @property
    def stats(self) -> IOStats:
        """The cube's I/O counters (block granularity)."""
        return self._store_object().stats

    @property
    def store(self) -> TiledStandardStore:
        """The underlying tiled store (e.g. for persistence)."""
        return self._store_object()

    def _store_object(self):
        if self._appender is not None:
            return self._appender.store
        return self._store

    def _axis(self, name: str) -> int:
        axis = self._by_name.get(name)
        if axis is None:
            raise KeyError(
                f"unknown dimension {name!r}; have {sorted(self._by_name)}"
            )
        return axis

    def _effective_dimension(self, axis: int) -> Dimension:
        """The dimension with its *current* extent.

        A growing dimension keeps its declared cell width but spans
        the expanded store extent, so domain-unit queries keep working
        after appends.
        """
        declared = self._dimensions[axis]
        extent = self.shape[axis]
        if extent == declared.size:
            return declared
        return Dimension(
            declared.name,
            extent,
            low=declared.low,
            high=declared.low + extent * declared.cell_width,
        )

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def load(self, data, chunk_shape: Optional[Sequence[int]] = None):
        """Bulk-load a fixed-size cube (SHIFT-SPLIT chunked transform).

        Returns the :class:`~repro.transform.report.TransformReport`.
        """
        if self._appender is not None:
            raise RuntimeError(
                "growing cubes are fed with append(), not load()"
            )
        if self._loaded:
            raise RuntimeError("the cube is already loaded")
        data = np.asarray(data, dtype=np.float64)
        expected = tuple(d.size for d in self._dimensions)
        if data.shape != expected:
            raise ValueError(
                f"data must have shape {expected}, got {data.shape}"
            )
        if chunk_shape is None:
            chunk_shape = tuple(
                min(8, extent) for extent in expected
            )
        if self._form == "nonstandard":
            report = transform_nonstandard_chunked(
                self._store, data, min(chunk_shape)
            )
        else:
            report = transform_standard_chunked(
                self._store, data, chunk_shape
            )
        self._loaded = True
        return report

    def adopt(self, directory) -> None:
        """Adopt coefficients already resident on the shared device.

        ``directory`` maps tile keys to the block ids a previous
        process allocated (see :mod:`repro.server.persist`).  No
        coefficient is read or written — the cube simply starts
        serving the existing blocks, so a reopened store answers
        bit-identically to the one that wrote it.
        """
        if self._appender is not None:
            raise RuntimeError("growing cubes cannot adopt a directory")
        if self._loaded:
            raise RuntimeError("the cube is already loaded")
        self._store.tile_store.restore_directory(dict(directory))
        self._loaded = True

    def append(self, slab) -> None:
        """Append one slab along the growing dimension."""
        if self._appender is None:
            raise RuntimeError(
                "this cube is fixed-size; construct it with "
                "grow_dimension=... to append"
            )
        self._appender.append(slab)
        self._loaded = True

    def update(self, deltas, **corner: float) -> None:
        """Add a block of deltas at domain coordinates (Example 2).

        ``deltas`` is a power-of-two block; ``corner`` names every
        dimension's domain value of the block's low corner, which must
        land on a cell boundary aligned to the block's extent.
        """
        from repro.update.batch import (
            batch_update_nonstandard,
            batch_update_standard,
        )

        self._require_loaded()
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.ndim != len(self._dimensions):
            raise ValueError(
                f"deltas must have {len(self._dimensions)} axes, "
                f"got {deltas.ndim}"
            )
        missing = set(self._by_name) - set(corner)
        if missing:
            raise KeyError(f"missing corner coordinates for {sorted(missing)}")
        cells = [0] * len(self._dimensions)
        for name, value in corner.items():
            axis = self._axis(name)
            cells[axis] = self._effective_dimension(axis).to_cell(value)
        if self._form == "nonstandard":
            batch_update_nonstandard(self._store_object(), deltas, cells)
        else:
            batch_update_standard(self._store_object(), deltas, cells)
        store = self._store_object()
        if hasattr(store, "flush"):
            store.flush()

    # ------------------------------------------------------------------
    # queries (domain units)
    # ------------------------------------------------------------------

    def _cell_bounds(
        self, ranges: Mapping[str, Tuple[float, float]]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        unknown = set(ranges) - set(self._by_name)
        if unknown:
            raise KeyError(f"unknown dimensions {sorted(unknown)}")
        lows = []
        highs = []
        shape = self.shape
        for axis in range(len(self._dimensions)):
            dimension = self._effective_dimension(axis)
            extent = shape[axis]
            if dimension.name in ranges:
                low, high = ranges[dimension.name]
                cell_low, cell_high = dimension.to_cell_range(low, high)
                cell_high = min(cell_high, extent - 1)
                cell_low = min(cell_low, cell_high)
            else:
                cell_low, cell_high = 0, extent - 1
            lows.append(cell_low)
            highs.append(cell_high)
        return tuple(lows), tuple(highs)

    def sum(self, **ranges: Tuple[float, float]) -> float:
        """Range sum; unspecified dimensions span their full extent.

        >>> cube.sum(latitude=(30, 60), time=(0, 90))  # doctest: +SKIP
        """
        self._require_loaded()
        lows, highs = self._cell_bounds(ranges)
        if self._form == "nonstandard":
            return range_sum_nonstandard(self._store_object(), lows, highs)
        return range_sum_standard(self._store_object(), lows, highs)

    def count(self, **ranges: Tuple[float, float]) -> int:
        """Number of cells in the queried box."""
        self._require_loaded()
        lows, highs = self._cell_bounds(ranges)
        cells = 1
        for low, high in zip(lows, highs):
            cells *= high - low + 1
        return cells

    def average(self, **ranges: Tuple[float, float]) -> float:
        """Range average (sum / count)."""
        return self.sum(**ranges) / self.count(**ranges)

    def value_at(self, **coordinates: float) -> float:
        """Point lookup at domain coordinates (every dimension named)."""
        self._require_loaded()
        missing = set(self._by_name) - set(coordinates)
        if missing:
            raise KeyError(f"missing coordinates for {sorted(missing)}")
        position = [0] * len(self._dimensions)
        for name, value in coordinates.items():
            axis = self._axis(name)
            position[axis] = self._effective_dimension(axis).to_cell(value)
        if self._form == "nonstandard":
            return point_query_nonstandard(self._store_object(), position)
        return point_query_standard(self._store_object(), position)

    def window(self, **ranges: Tuple[float, float]) -> np.ndarray:
        """Reconstruct the cells of the queried box (Result 6)."""
        self._require_loaded()
        lows, highs = self._cell_bounds(ranges)
        stops = tuple(high + 1 for high in highs)
        if self._form == "nonstandard":
            return reconstruct_box_nonstandard(
                self._store_object(), lows, stops
            )
        return reconstruct_box_standard(self._store_object(), lows, stops)

    def _require_loaded(self) -> None:
        if not self._loaded:
            raise RuntimeError("the cube holds no data yet")
