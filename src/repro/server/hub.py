"""Multi-tenant serving hub: shared storage arena, per-tenant engines.

One :class:`ServingHub` owns the whole serving-side storage stack:

* a single **shared block arena** — one raw
  :class:`~repro.storage.block_device.BlockDevice` wrapped in a
  :class:`~repro.storage.journal.JournaledDevice` (group-commit
  durability, per-block L1 summaries for degraded error bounds) and a
  :class:`~repro.service.deadline.DeadlineGuardDevice` (per-thread
  cache-only scopes for deadline-degraded answers);
* one **shared** :class:`~repro.service.pool.ShardedBufferPool` over
  that arena — the memory budget every tenant competes for;
* per-cube :class:`~repro.olap.WaveletCube`\\ s constructed *on* the
  shared device (block ids stay globally unique because all allocation
  funnels through the one arena) and per-cube
  :class:`~repro.service.engine.QueryEngine`\\ s with tenant-labeled
  metrics, the tenant's in-flight quota, and deadline degradation
  enabled.

Tenant isolation is therefore exactly what the engine primitives give:
a tenant saturating its quota gets :class:`QuotaError` (HTTP 429)
without occupying another tenant's queue slots, and a tenant whose
deadlines expire gets cache-only degraded answers without issuing
device reads that would queue ahead of others.

Updates mutate shared structures (device allocation, tile
directories), so the hub serialises all update batches behind one
write lock; queries only ever ``peek`` and run lock-free against the
pool.
"""

from __future__ import annotations

import os
import secrets
import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fault.breaker import CircuitBreaker
from repro.fault.device import FaultyBlockDevice
from repro.fault.retry import RetryPolicy
from repro.obs.exporters import (
    heat_to_prometheus,
    io_receipt,
    to_chrome_trace,
    to_prometheus,
)
from repro.obs.flightrec import FlightRecorder
from repro.obs.heat import HeatRecorder, get_heat, heat_context, set_heat
from repro.obs.reqlog import RequestLog
from repro.obs.tracer import NULL_TRACER, get_tracer
from repro.olap.cube import WaveletCube
from repro.olap.schema import Dimension, SchemaError
from repro.replica.client import ReplicationClient
from repro.replica.follower import FollowerEngine
from repro.replica.shipper import JournalShipper
from repro.server import persist
from repro.service.deadline import DeadlineGuardDevice
from repro.service.engine import QueryEngine
from repro.service.metrics import MetricsRegistry
from repro.service.pool import ShardedBufferPool
from repro.storage.block_device import BlockDevice
from repro.storage.iostats import IOStats
from repro.storage.journal import JournaledDevice
from repro.storage.mmap_device import MmapBlockDevice

__all__ = [
    "CubeState",
    "ReplicaReadOnlyError",
    "ServingHub",
    "Tenant",
]


class ReplicaReadOnlyError(RuntimeError):
    """An update reached a hub that is not (or not yet) the primary.

    Maps to HTTP 503 with ``Retry-After``: a *replica* stays read-only
    until promoted, a *promoting* hub is seconds away from accepting
    the retried write.
    """

    def __init__(self, role: str, retry_after_s: float = 1.0) -> None:
        super().__init__(
            f"updates rejected: this hub is role={role!r}, not primary"
        )
        self.role = role
        self.retry_after_s = retry_after_s


class Tenant:
    """One tenant: an API key, a quota, and its cubes."""

    def __init__(
        self,
        name: str,
        api_key: str,
        max_inflight: int,
        num_workers: int,
        default_deadline_s: Optional[float],
    ) -> None:
        self.name = name
        self.api_key = api_key
        self.max_inflight = max_inflight
        self.num_workers = num_workers
        self.default_deadline_s = default_deadline_s
        self.cubes: Dict[str, "CubeState"] = {}


class CubeState:
    """One served cube: the cube, its engine, and its labels."""

    def __init__(
        self, name: str, tenant: str, cube: WaveletCube, engine: QueryEngine
    ) -> None:
        self.name = name
        self.tenant = tenant
        self.cube = cube
        self.engine = engine

    def model(self) -> dict:
        """The cube's logical model (the ``/model`` payload)."""
        return {
            "name": self.name,
            "shape": list(self.cube.shape),
            "dimensions": [
                dimension.to_dict() for dimension in self.cube.dimensions
            ],
            "measures": ["sum", "count", "avg"],
        }


class ServingHub:
    """Shared-arena multi-tenant serving state.

    Parameters
    ----------
    block_slots:
        Coefficient slots per device block, shared by every cube; a
        cube of ``d`` dimensions is tiled with ``block_edge =
        block_slots ** (1/d)``, which must be integral (64 slots serve
        1-D edge 64, 2-D edge 8, 3-D edge 4, 6-D edge 2).
    pool_blocks:
        Total shared buffer-pool budget, in blocks.
    num_shards:
        Lock shards of the shared pool.
    queue_depth / num_workers / max_inflight / default_deadline_s:
        Per-tenant engine defaults; overridable per tenant.
    breaker_threshold:
        When set, every engine gets its own
        :class:`~repro.fault.breaker.CircuitBreaker` with this failure
        threshold (surfaced through ``/healthz``).
    flight_capacity:
        Per-ring bound of the always-on
        :class:`~repro.obs.flightrec.FlightRecorder` behind
        ``/debug/queries`` (slowest / degraded / faulted request
        receipts).  ``0`` disables the recorder.
    reqlog_capacity:
        Ring bound of the structured
        :class:`~repro.obs.reqlog.RequestLog`; ``0`` disables it.
    reqlog_stream:
        Optional text stream each request-log record is also written
        to as one JSON line (e.g. ``sys.stderr`` for the CLI's
        ``--reqlog``).
    heat_max_tiles:
        Per-label tile bound of the
        :class:`~repro.obs.heat.HeatRecorder` the hub installs as the
        process-wide recorder; ``0`` disables heat accounting.
    admin_key:
        Key granting unfiltered access to the ``/debug/*`` endpoints;
        generated when omitted (read it back via :attr:`admin_key`).
    data_dir:
        When set, the shared arena lives in
        ``<data_dir>/arena.blocks`` on a file-backed
        :class:`~repro.storage.mmap_device.MmapBlockDevice` instead of
        an in-memory :class:`~repro.storage.block_device.BlockDevice`,
        and the hub's logical state (tenants, cube schemas, tile
        directories) is mirrored to ``<data_dir>/hub_state.json`` on
        every mutation.  A hub constructed over an existing directory
        reopens the arena and serves the stored coefficients
        bit-identically — no reload.  The journal and deadline-guard
        layers stack on the mmap device exactly as on the in-memory
        one.
    """

    def __init__(
        self,
        block_slots: int = 64,
        pool_blocks: int = 64,
        num_shards: int = 4,
        queue_depth: int = 64,
        num_workers: int = 2,
        max_inflight: int = 32,
        default_deadline_s: Optional[float] = None,
        breaker_threshold: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        data_dir: Optional[str] = None,
        flight_capacity: int = 64,
        reqlog_capacity: int = 512,
        reqlog_stream=None,
        heat_max_tiles: int = 65536,
        admin_key: Optional[str] = None,
        replicate: bool = False,
        ship_retain: int = 256,
        replica_of: Optional[str] = None,
        replica_id: str = "replica",
        replica_poll_s: float = 0.1,
        primary_api_key: Optional[str] = None,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
    ) -> None:
        if replica_of is not None and data_dir is not None:
            raise ValueError(
                "replica_of and data_dir are mutually exclusive: a "
                "replica's arena is defined by the primary's stream, "
                "not by a local sidecar"
            )
        if replica_of is not None and replicate:
            raise ValueError(
                "a hub starts as either a shipping primary (replicate) "
                "or a replica (replica_of); promotion turns the latter "
                "into the former"
            )
        self._stats = IOStats()
        self._data_dir = data_dir
        self._restoring = False
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
            arena_path = os.path.join(data_dir, persist.ARENA_FILENAME)
            reopening = (
                os.path.exists(arena_path)
                and os.path.getsize(arena_path) > 0
            )
            raw = MmapBlockDevice(
                arena_path,
                block_slots=None if reopening else block_slots,
                stats=self._stats,
            )
            block_slots = raw.block_slots
        else:
            raw = BlockDevice(block_slots, stats=self._stats)
        self._block_slots = block_slots
        self._raw = raw
        self._fault_rate = fault_rate
        self._fault_seed = fault_seed
        device = raw
        if fault_rate > 0.0:
            # Fault injection goes *under* the journal so injected
            # read errors and torn writes are subject to checksum
            # verification, exactly as serve-replay wires it.
            device = FaultyBlockDevice(
                raw, seed=fault_seed, read_error_rate=fault_rate
            )
        self._journaled = JournaledDevice(device)
        self._guard = DeadlineGuardDevice(self._journaled)
        self._pool = ShardedBufferPool(
            self._guard, pool_blocks, num_shards=num_shards
        )
        self._metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self._queue_depth = queue_depth
        self._num_workers = num_workers
        self._max_inflight = max_inflight
        self._default_deadline_s = default_deadline_s
        self._breaker_threshold = breaker_threshold
        self._tenants: Dict[str, Tenant] = {}
        self._api_keys: Dict[str, str] = {}  # key -> tenant name
        self._write_lock = threading.Lock()
        self._closed = False
        self._admin_key = (
            admin_key if admin_key is not None else secrets.token_hex(16)
        )
        self._flightrec = (
            FlightRecorder(flight_capacity) if flight_capacity > 0 else None
        )
        self._reqlog = (
            RequestLog(reqlog_capacity, stream=reqlog_stream)
            if reqlog_capacity > 0
            else None
        )
        self._heat: Optional[HeatRecorder] = None
        self._heat_previous: Optional[HeatRecorder] = None
        if heat_max_tiles > 0:
            # The hub installs its recorder as the process-wide one so
            # the zero-argument storage hooks can reach it; restored on
            # close (last-constructed hub wins, like set_tracer).
            self._heat = HeatRecorder(max_tiles=heat_max_tiles)
            self._heat_previous = set_heat(self._heat)
        # ------------------------------------------------------------------
        # replication roles (ROADMAP item 3)
        # ------------------------------------------------------------------
        self._role = "replica" if replica_of is not None else "primary"
        self._state_version = 0
        self._ship_retain = ship_retain
        self._shipper: Optional[JournalShipper] = None
        self.follower: Optional[FollowerEngine] = None
        self._client: Optional[ReplicationClient] = None
        self._pending_invalid: List[int] = []  # guarded-by: _write_lock
        if data_dir is not None and os.path.exists(
            persist.state_path(data_dir)
        ):
            self._restore(persist.load_state(data_dir))
        if replicate:
            self._shipper = JournalShipper(
                self._journaled, retain=ship_retain
            )
        if replica_of is not None:
            self.follower = FollowerEngine(journaled=self._journaled)
            self._client = ReplicationClient(
                self,
                replica_of,
                primary_api_key or "",
                follower_id=replica_id,
                poll_interval_s=replica_poll_s,
            )
            # Bootstrap synchronously: a replica that cannot reach its
            # primary should fail construction, not serve emptiness.
            self._client.fetch_snapshot()
            self._client.start()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _restore(self, state: dict) -> None:
        """Rebuild tenants and cubes from the ``hub_state.json``
        sidecar, adopting the blocks already in the arena file."""
        self._restoring = True
        try:
            for tenant_record in state["tenants"]:
                self.add_tenant(
                    tenant_record["name"],
                    api_key=tenant_record["api_key"],
                    max_inflight=tenant_record["max_inflight"],
                    num_workers=tenant_record["num_workers"],
                    default_deadline_s=tenant_record["default_deadline_s"],
                )
                for cube_record in tenant_record["cubes"]:
                    cube_state = self.add_cube(
                        tenant_record["name"],
                        cube_record["name"],
                        [
                            persist.dimension_from_state(record)
                            for record in cube_record["dimensions"]
                        ],
                    )
                    cube_state.cube.adopt(
                        {
                            persist.key_from_state(key): block_id
                            for key, block_id in cube_record["directory"]
                        }
                    )
        finally:
            self._restoring = False

    def _persist(self) -> None:
        """Mirror the logical state to disk (no-op without a data dir,
        and during :meth:`_restore`, which only replays it)."""
        if self._data_dir is None or self._restoring:
            return
        # lint: protocol-exempt=REPRO-P003 (wrapper: call sites carry the flush+sync obligation)
        persist.save_state(self, self._data_dir)

    # ------------------------------------------------------------------
    # replication: primary side
    # ------------------------------------------------------------------

    @property
    def role(self) -> str:
        """``"primary"``, ``"replica"`` or ``"promoting"``."""
        return self._role

    @property
    def shipper(self) -> Optional[JournalShipper]:
        return self._shipper

    @property
    def replication_client(self) -> Optional[ReplicationClient]:
        return self._client

    @property
    def state_version(self) -> int:
        """Monotone counter over logical-state changes (tenants, cube
        schemas, tile directories).  Followers compare it per poll and
        refetch ``/replica/state`` only when it moved."""
        return self._state_version

    @property
    def journaled(self) -> JournaledDevice:
        return self._journaled

    def snapshot_payload(self) -> dict:
        """Full-arena snapshot for follower bootstrap, taken under the
        write lock so the image is a committed prefix: blocks, the seq
        they correspond to, and the logical state."""
        import base64

        with self._write_lock:
            # Dirty pool frames hold bytes the arena does not; flush so
            # the image *is* the committed state.  (Primary-only path:
            # a flush group-commits through the journal and ships like
            # any other group — followers skip it as a duplicate once
            # the snapshot seq covers it.)
            self._pool.flush()
            blocks = self._journaled.dump_blocks()  # lint: uncounted (bulk snapshot export, not per-block I/O)
            last_seq = self._journaled.journal.next_seq - 1
            state = persist.hub_to_state(self)
            return {
                "blocks": base64.b64encode(
                    np.ascontiguousarray(blocks, dtype=np.float64).tobytes()
                ).decode("ascii"),
                "num_blocks": int(blocks.shape[0]),
                "block_slots": int(self._block_slots),
                "last_seq": int(last_seq),
                "state": state,
                "state_version": int(self._state_version),
            }

    # ------------------------------------------------------------------
    # replication: replica side (driven by ReplicationClient)
    # ------------------------------------------------------------------

    def _install_snapshot(
        self, blocks: np.ndarray, last_seq: int, state: dict
    ) -> None:
        """Adopt a primary snapshot wholesale (bootstrap or gap
        resync)."""
        assert self.follower is not None
        if blocks.size and blocks.shape[1] != self._block_slots:
            raise ValueError(
                f"primary block_slots {blocks.shape[1]} != replica "
                f"block_slots {self._block_slots}; start the replica "
                f"with matching geometry"
            )
        with self._write_lock:
            with self._pool.io_lock:
                # may-acquire: TraceStore._lock, Tracer._orphan_lock
                self.follower.install_snapshot(blocks, last_seq)
            self._apply_state_locked(state)
            stale = list(range(self._journaled.num_blocks))
            self._pending_invalid = self._pool.invalidate(
                self._pending_invalid + stale
            )

    def _replica_apply(self, data: bytes) -> None:
        """Feed shipped bytes to the follower and invalidate the pool
        frames the replay rewrote.  Applies run under the pool's I/O
        lock so a concurrent query miss cannot observe a half-applied
        group; stale-but-resident frames are then dropped (pinned ones
        retry next round via ``_pending_invalid``)."""
        assert self.follower is not None
        with self._write_lock:
            with self._pool.io_lock:
                # may-acquire: TraceStore._lock, Tracer._orphan_lock
                touched = self.follower.feed(data)
            if touched or self._pending_invalid:
                self._pending_invalid = self._pool.invalidate(
                    self._pending_invalid + touched
                )

    def _apply_state(self, state: dict, version: int) -> None:
        """Refresh tenant/cube provisioning from the primary's logical
        state (new tenants, new cubes, grown tile directories)."""
        with self._write_lock:
            self._apply_state_locked(state)
            self._state_version = version

    def _apply_state_locked(self, state: dict) -> None:
        # Callers hold _write_lock.
        self._restoring = True  # suppress _persist / version bumps
        try:
            for tenant_record in state["tenants"]:
                if tenant_record["name"] not in self._tenants:
                    self.add_tenant(
                        tenant_record["name"],
                        api_key=tenant_record["api_key"],
                        max_inflight=tenant_record["max_inflight"],
                        num_workers=tenant_record["num_workers"],
                        default_deadline_s=tenant_record[
                            "default_deadline_s"
                        ],
                    )
                tenant = self._tenants[tenant_record["name"]]
                for cube_record in tenant_record["cubes"]:
                    directory = {
                        persist.key_from_state(key): block_id
                        for key, block_id in cube_record["directory"]
                    }
                    if cube_record["name"] not in tenant.cubes:
                        cube_state = self._add_cube_impl(
                            tenant_record["name"],
                            cube_record["name"],
                            [
                                persist.dimension_from_state(record)
                                for record in cube_record["dimensions"]
                            ],
                            None,
                            None,
                        )
                        cube_state.cube.adopt(directory)
                    else:
                        cube_state = tenant.cubes[cube_record["name"]]
                        cube_state.cube.store.tile_store.restore_directory(
                            directory
                        )
        finally:
            self._restoring = False

    def replication_state(self) -> dict:
        """Role, lag and stream counters — the ``/healthz`` replication
        block and the :class:`FailoverController`'s catch-up ordering.

        The staleness bound on a replica is ``lag_groups``: the number
        of committed groups the primary has acknowledged that this
        follower has not yet applied (``primary_next_seq - 1 -
        applied_seq`` as of the last successful poll).  A reader at
        ``applied_seq = s`` sees exactly the primary's state after
        group ``s`` — bit-identical, never interleaved — so lag is a
        whole-group delta, not a byte-level approximation.
        """
        out: Dict[str, object] = {
            "role": self._role,
            "state_version": self._state_version,
        }
        if self._shipper is not None:
            out["shipper"] = self._shipper.snapshot()
        if self.follower is not None:
            follower_state = self.follower.snapshot()
            out["follower"] = follower_state
            out["applied_seq"] = follower_state["applied_seq"]
            if self._client is not None:
                client_state = self._client.snapshot()
                out["client"] = client_state
                out["lag_groups"] = max(
                    0,
                    int(client_state["primary_next_seq"])
                    - 1
                    - int(follower_state["applied_seq"]),
                )
        return out

    def promote(self) -> dict:
        """Promote this replica to primary.

        Stops the poller *before* taking the write lock (the poll
        thread's apply path acquires it), finalizes the follower —
        discarding any torn tail the dead primary shipped, replaying
        anything ingested-but-unapplied, full checksum scan — then
        starts shipping and re-enables writes.  Idempotent on a
        primary.  Writes arriving during the window get 503 +
        ``Retry-After`` via :class:`ReplicaReadOnlyError`.
        """
        if self._role == "primary":
            return {"role": self._role, "promoted": False}
        assert self.follower is not None
        self._role = "promoting"
        if self._client is not None:
            self._client.stop()
        with self._write_lock:
            report = self.follower.finalize()
            if not report.clean:
                self._role = "replica"
                raise RuntimeError(
                    f"promotion aborted: follower arena failed its "
                    f"checksum scan (corrupt blocks "
                    f"{report.corrupt_blocks}, discarded "
                    f"{report.discarded_bytes} torn bytes)"
                )
            # Every resident frame may predate the final replay; drop
            # them all (no write-back) and let queries re-fault.
            self._pending_invalid = self._pool.invalidate(
                self._pending_invalid
                + list(range(self._journaled.num_blocks))
            )
            if self._shipper is None:
                self._shipper = JournalShipper(
                    self._journaled, retain=self._ship_retain
                )
            for tenant in self._tenants.values():
                for cube_state in tenant.cubes.values():
                    cube_state.engine.read_only = False
            self._role = "primary"
        self._metrics.counter("replica_promotions").inc()
        return {
            "role": self._role,
            "promoted": True,
            "applied_seq": int(self.follower.snapshot()["applied_seq"]),
            "replayed_groups": report.replayed_groups,
            "discarded_bytes": report.discarded_bytes,
        }

    # ------------------------------------------------------------------
    # shared infrastructure
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def pool(self) -> ShardedBufferPool:
        return self._pool

    @property
    def stats(self) -> IOStats:
        """The shared arena's I/O counters."""
        return self._stats

    @property
    def guard(self) -> DeadlineGuardDevice:
        return self._guard

    @property
    def admin_key(self) -> str:
        """Key unlocking the unfiltered ``/debug/*`` views."""
        return self._admin_key

    @property
    def flight_recorder(self) -> Optional[FlightRecorder]:
        return self._flightrec

    @property
    def request_log(self) -> Optional[RequestLog]:
        return self._reqlog

    @property
    def heat(self) -> Optional[HeatRecorder]:
        return self._heat

    def edge_for(self, ndim: int) -> int:
        """The tile edge a ``ndim``-dimensional cube must use so its
        tiles fill exactly one shared block."""
        edge = round(self._block_slots ** (1.0 / ndim))
        for candidate in (edge - 1, edge, edge + 1):
            if candidate >= 2 and candidate**ndim == self._block_slots:
                return candidate
        raise SchemaError(
            f"no integral block edge: {self._block_slots} slots do not "
            f"tile a {ndim}-dimensional cube"
        )

    # ------------------------------------------------------------------
    # provisioning
    # ------------------------------------------------------------------

    def add_tenant(
        self,
        name: str,
        api_key: Optional[str] = None,
        max_inflight: Optional[int] = None,
        num_workers: Optional[int] = None,
        default_deadline_s: Optional[float] = None,
    ) -> Tenant:
        """Register a tenant; generates an API key when none is given."""
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already exists")
        if api_key is None:
            api_key = secrets.token_hex(16)
        if api_key in self._api_keys:
            raise ValueError("API key already in use")
        tenant = Tenant(
            name,
            api_key,
            max_inflight=(
                max_inflight
                if max_inflight is not None
                else self._max_inflight
            ),
            num_workers=(
                num_workers
                if num_workers is not None
                else self._num_workers
            ),
            default_deadline_s=(
                default_deadline_s
                if default_deadline_s is not None
                else self._default_deadline_s
            ),
        )
        self._tenants[name] = tenant
        self._api_keys[api_key] = name
        self._bump_state_version()
        # lint: protocol-exempt=REPRO-P003 (logical-only mutation: a new tenant writes no arena bytes)
        self._persist()
        return tenant

    def _bump_state_version(self) -> None:
        """Advance the follower-visible state version — skipped while
        replaying persisted or primary-shipped state (the version then
        tracks the source's, not ours)."""
        if not self._restoring:
            self._state_version += 1

    def add_cube(
        self,
        tenant_name: str,
        cube_name: str,
        dimensions: Sequence[Dimension],
        data=None,
        chunk_shape=None,
    ) -> CubeState:
        """Create and (optionally) bulk-load one tenant cube.

        The cube lives on the shared arena and its engine serves
        through the shared pool with tenant-labeled metrics.
        """
        if data is not None:
            with self._write_lock:
                return self._add_cube_impl(
                    tenant_name, cube_name, dimensions, data, chunk_shape
                )
        return self._add_cube_impl(
            tenant_name, cube_name, dimensions, None, None
        )

    def _add_cube_impl(
        self,
        tenant_name: str,
        cube_name: str,
        dimensions: Sequence[Dimension],
        data,
        chunk_shape,
    ) -> CubeState:
        # Never acquires _write_lock itself: replica state application
        # calls this while already holding it (add_cube wraps the
        # bulk-load path in the lock for external callers).
        tenant = self.tenant(tenant_name)
        if cube_name in tenant.cubes:
            raise ValueError(
                f"tenant {tenant_name!r} already has cube {cube_name!r}"
            )
        cube = WaveletCube(
            list(dimensions),
            block_edge=self.edge_for(len(dimensions)),
            pool_blocks=max(8, self._pool.capacity // 2),
            device=self._guard,
        )
        if data is not None:
            cube.load(np.asarray(data, dtype=np.float64), chunk_shape)
            cube.store.flush()
            if self._data_dir is not None:
                # the sidecar written below references the bulk-loaded
                # blocks; make them durable before it can name them
                self._pool.flush()
                self._raw.sync()
        breaker = (
            CircuitBreaker(failure_threshold=self._breaker_threshold)
            if self._breaker_threshold is not None
            else None
        )
        # Under injected storage faults a read can fail transiently;
        # replicas additionally race replay against a query's stale
        # summary (heals on retry).  Both get a bounded retry policy.
        retry_policy = (
            RetryPolicy(
                max_attempts=4, base_delay_s=0.0002, seed=self._fault_seed
            )
            if self._fault_rate > 0.0 or self._role != "primary"
            else None
        )
        engine = QueryEngine(
            cube.store,
            num_workers=tenant.num_workers,
            queue_depth=self._queue_depth,
            default_timeout=tenant.default_deadline_s,
            metrics=self._metrics,
            breaker=breaker,
            retry_policy=retry_policy,
            degraded_reads=True,
            pool=self._pool,
            metric_labels={"tenant": tenant_name, "cube": cube_name},
            max_inflight=tenant.max_inflight,
            degrade_on_deadline=True,
            read_only=self._role != "primary",
        )
        state = CubeState(cube_name, tenant_name, cube, engine)
        tenant.cubes[cube_name] = state
        self._bump_state_version()
        # lint: protocol-exempt=REPRO-P003 (schema-only registration writes no arena bytes; the bulk-load branch flushes and syncs above)
        self._persist()
        return state

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def tenant(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise KeyError(
                f"unknown tenant {name!r}; have {sorted(self._tenants)}"
            )
        return tenant

    def resolve_key(self, api_key: Optional[str]) -> Optional[Tenant]:
        """The tenant owning ``api_key`` (``None`` when unknown)."""
        if not api_key:
            return None
        name = self._api_keys.get(api_key)
        return self._tenants.get(name) if name is not None else None

    def cube(self, tenant_name: str, cube_name: str) -> CubeState:
        tenant = self.tenant(tenant_name)
        state = tenant.cubes.get(cube_name)
        if state is None:
            raise KeyError(
                f"tenant {tenant_name!r} has no cube {cube_name!r}; "
                f"have {sorted(tenant.cubes)}"
            )
        return state

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def update(
        self, tenant_name: str, cube_name: str, deltas, corner: dict
    ) -> dict:
        """Apply one SHIFT-SPLIT update batch to a tenant cube.

        All updates across all tenants serialise behind one lock:
        update batches allocate blocks on the shared arena and mutate
        the cube's tile directory, neither of which is safe under
        concurrent writers.  Queries keep flowing — they never
        allocate.  Returns the I/O delta of the batch.

        With a data dir, a batch is made durable before this method
        returns: the store's dirty frames were flushed through the
        journal by ``cube.update``, the arena is msync'd, and the state
        sidecar is atomically rewritten.  An *acknowledged* batch
        therefore survives process death and power loss; a crash while
        a batch is still in flight may leave it partially applied (the
        write-ahead journal is in-memory and cannot be replayed across
        process death) — the caller that never got an answer must treat
        the batch as not applied-exactly-once.
        """
        if self._role != "primary":
            raise ReplicaReadOnlyError(self._role)
        state = self.cube(tenant_name, cube_name)
        deltas = np.asarray(deltas, dtype=np.float64)
        with self._write_lock:
            before = self._stats.snapshot()
            blocks_before = self._journaled.num_blocks
            with heat_context(tenant_name, "update"):
                state.cube.update(deltas, **corner)
            if self._journaled.num_blocks != blocks_before:
                # New blocks mean new tile-directory entries; followers
                # must refresh the logical state to route queries to
                # the replicated blocks.
                self._bump_state_version()
            if self._data_dir is not None:
                # cube.update already flushed the store's dirty frames
                # through the journal into the arena; flush the shared
                # pool too (queries keep it clean, but cheap and safe)
                # and msync the arena so the batch is durable *before*
                # it is acknowledged and before the sidecar below can
                # reference blocks the file does not yet guarantee.
                self._pool.flush()
                self._raw.sync()
                # An update can allocate blocks for untouched tiles, so
                # the persisted directory must follow every durable
                # batch (and must describe only synced bytes — hence
                # inside the data-dir branch, after flush + sync).
                self._persist()
            delta = self._stats.delta_since(before)
        self._metrics.counter(
            "updates_applied",
            {"tenant": tenant_name, "cube": cube_name},
        ).inc()
        return {
            "block_reads": delta.block_reads,
            "block_writes": delta.block_writes,
            "journal_writes": delta.journal_writes,
        }

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        """Liveness payload: breaker / journal / queue state.

        ``status`` is ``"ok"``, ``"degraded"`` (any breaker not
        closed) or ``"shedding"`` (any admission queue at capacity —
        the load-shedding signal the satellite HWM gauge feeds).
        """
        status = "ok"
        severity = {"ok": 0, "degraded": 1, "shedding": 2}
        tenants: Dict[str, dict] = {}
        for name in self.tenants():
            tenant = self._tenants[name]
            cubes: Dict[str, dict] = {}
            tenant_status = "ok"
            tenant_hwm = 0
            for cube_name, state in sorted(tenant.cubes.items()):
                engine = state.engine
                entry = {
                    "queue_depth": engine.queue_depth,
                    "queue_hwm": engine.queue_hwm,
                    "queue_capacity": engine.queue_capacity,
                    "max_inflight": engine.max_inflight,
                }
                tenant_hwm = max(tenant_hwm, engine.queue_hwm)
                if engine.breaker is not None:
                    entry["breaker"] = engine.breaker.state
                    if engine.breaker.state != "closed":
                        if severity["degraded"] > severity[tenant_status]:
                            tenant_status = "degraded"
                if engine.queue_depth >= engine.queue_capacity:
                    tenant_status = "shedding"
                cubes[cube_name] = entry
            # A degraded tenant must be distinguishable from a degraded
            # hub: the rollup marks *which* tenant is unhealthy, and
            # the hub status is the worst tenant's.
            if severity[tenant_status] > severity[status]:
                status = tenant_status
            tenants[name] = {
                "status": tenant_status,
                "queue_hwm": tenant_hwm,
                "cubes": cubes,
            }
        return {
            "status": status,
            "role": self._role,
            "tenants": tenants,
            "journal": {"log_bytes": self._journaled.journal.log_bytes},
            "pool": {
                "capacity": self._pool.capacity,
                "resident": self._pool.resident,
                "dirty": self._pool.dirty,
            },
            "replication": self.replication_state(),
        }

    def prometheus(self) -> str:
        """The shared registry in Prometheus text format.

        Also publishes the mmap arena's internals (growths, mapped
        bytes, msync work, resize-gate writer waits) as gauges and
        appends the per-``(tenant, class)`` tile-heat counters."""
        for tenant in self._tenants.values():
            for state in tenant.cubes.values():
                state.engine.refresh_gauges()
        telemetry = getattr(self._raw, "telemetry", None)
        if callable(telemetry):
            arena = telemetry()
            gauge = self._metrics.gauge
            gauge("arena_growths").set(arena["growths"])
            gauge("arena_capacity_blocks").set(arena["capacity_blocks"])
            gauge("arena_allocated_blocks").set(arena["allocated_blocks"])
            gauge("arena_mapped_bytes").set(arena["mapped_bytes"])
            gauge("arena_msyncs").set(arena["msyncs"])
            gauge("arena_msync_seconds").set(arena["msync_seconds"])
            gauge("arena_resize_wait_s").set(arena["resize_wait_s"])
            gauge("arena_resize_exclusive_acquires").set(
                arena["resize_exclusive_acquires"]
            )
        gauge = self._metrics.gauge
        gauge("replica_role").set(
            {"primary": 0, "replica": 1, "promoting": 2}[self._role]
        )
        gauge("replication_state_version").set(self._state_version)
        if self._shipper is not None:
            ship = self._shipper.snapshot()
            gauge("replication_shipped_groups").set(ship["groups_shipped"])
            gauge("replication_shipped_bytes").set(ship["bytes_shipped"])
            gauge("replication_last_seq").set(ship["last_seq"])
        if self.follower is not None:
            replication = self.replication_state()
            gauge("replica_applied_seq").set(replication["applied_seq"])
            gauge("replica_lag_groups").set(
                replication.get("lag_groups", 0)
            )
            client_state = replication.get("client")
            if isinstance(client_state, dict):
                gauge("replica_polls").set(client_state["polls"])
                gauge("replica_poll_errors").set(
                    client_state["poll_errors"]
                )
                gauge("replica_gaps_resynced").set(
                    client_state["gaps_resynced"]
                )
        text = to_prometheus(self._metrics)
        if self._heat is not None:
            text += heat_to_prometheus(self._heat.aggregates())
        return text

    # ------------------------------------------------------------------
    # debug payloads (served by /debug/* on the app)
    # ------------------------------------------------------------------

    def debug_queries(self, tenant: Optional[str] = None) -> dict:
        """Flight-recorder snapshot plus the most recent request-log
        records, optionally filtered to one tenant."""
        payload: dict = {
            "flight": (
                self._flightrec.snapshot(tenant=tenant)
                if self._flightrec is not None
                else None
            ),
        }
        if self._reqlog is not None:
            payload["recent"] = self._reqlog.records(
                tenant=tenant, limit=64
            )
            payload["reqlog_dropped"] = self._reqlog.dropped
        else:
            payload["recent"] = []
            payload["reqlog_dropped"] = 0
        return payload

    def debug_trace(self) -> dict:
        """The live trace (if a tracer is installed): span count, drop
        count, the lossless I/O receipt and a Chrome-trace export."""
        tracer = get_tracer()
        if tracer is NULL_TRACER:
            return {"enabled": False, "spans": 0, "dropped": 0}
        spans = tracer.spans()
        orphan = dict(tracer.orphan_io)
        dropped = getattr(
            getattr(tracer, "store", None), "dropped", 0
        )
        return {
            "enabled": True,
            "spans": len(spans),
            "dropped": dropped,
            "io_receipt": io_receipt(spans, orphan_io=orphan),
            "chrome_trace": to_chrome_trace(
                spans, orphan_io=orphan, dropped=dropped
            ),
        }

    def debug_heat(self, tenant: Optional[str] = None) -> dict:
        """Tile-heat map: per-label aggregates plus the hottest tiles
        (the JSON form ROADMAP item 5's tiling feedback consumes)."""
        if self._heat is None:
            return {"enabled": False}
        payload = self._heat.snapshot(tenant=tenant, top=64)
        payload["enabled"] = True
        payload["aggregates"] = self._heat.aggregates(tenant=tenant)
        return payload

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every engine (drain + flush).  Idempotent.

        With a data dir the dirty pool frames are flushed through the
        journal, the arena file is synced and closed, and the state
        sidecar is rewritten — the directory is then safe to reopen
        from another process.
        """
        if self._closed:
            return
        self._closed = True
        if self._client is not None:
            self._client.stop()
        if self._shipper is not None:
            self._shipper.detach_journal()
        if self._heat is not None and get_heat() is self._heat:
            set_heat(self._heat_previous)
        for tenant in self._tenants.values():
            for state in tenant.cubes.values():
                state.engine.close()
        if self._data_dir is not None:
            self._pool.flush()
            # sync before persisting: the sidecar must describe bytes
            # the arena file already guarantees (persisting first was
            # a real ordering bug REPRO-P003 caught)
            self._raw.sync()
            self._persist()
            self._raw.close()

    def __enter__(self) -> "ServingHub":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
