"""Deterministic demo hub used by the CLI, smoke driver and benches.

Two tenants with fixed API keys, each owning one 64x64 cube on the
shared arena:

* ``acme`` / key ``acme-key`` — cube ``sales`` with a declared
  ``ymd``-style hierarchy on ``time`` (4 x 4 x 4 members);
* ``globex`` / key ``globex-key`` — cube ``telemetry`` with implicit
  binary hierarchies only.

Everything is seeded, so two processes building the demo hub serve
bit-identical answers — the property the smoke driver asserts.
"""

from __future__ import annotations

import numpy as np

from repro.olap.schema import Dimension, Hierarchy, Level
from repro.server.hub import ServingHub

__all__ = ["build_demo_hub"]


def build_demo_hub(
    seed: int = 7,
    size: int = 64,
    pool_blocks: int = 64,
    max_inflight: int = 64,
    num_workers: int = 2,
    queue_depth: int = 64,
    data_dir=None,
    reqlog_stream=None,
    flight_capacity: int = 64,
    reqlog_capacity: int = 512,
    **hub_kwargs,
) -> ServingHub:
    """A two-tenant hub over ``size`` x ``size`` cubes (power of two).

    With ``data_dir`` the demo data is bulk-loaded straight onto the
    persistent arena; the directory must not already hold a hub (use
    ``ServingHub(data_dir=...)`` to reopen one).  The debug admin key
    is the deterministic ``demo-admin-key`` so smoke drivers can hit
    ``/debug/*`` without scraping startup output.  Extra keyword
    arguments (``replicate``, ``fault_rate`` …) pass straight through
    to :class:`ServingHub`.
    """
    hub = ServingHub(
        block_slots=64,
        pool_blocks=pool_blocks,
        queue_depth=queue_depth,
        num_workers=num_workers,
        max_inflight=max_inflight,
        data_dir=data_dir,
        reqlog_stream=reqlog_stream,
        flight_capacity=flight_capacity,
        reqlog_capacity=reqlog_capacity,
        admin_key="demo-admin-key",
        **hub_kwargs,
    )
    rng = np.random.default_rng(seed)

    hub.add_tenant("acme", api_key="acme-key")
    ymd = Hierarchy(
        "ymd",
        [Level("year", 4), Level("month", 4), Level("day", 4)],
    )
    time_dim = (
        Dimension("time", size, label="Time", hierarchies=(ymd,))
        if size == 64
        else Dimension("time", size, label="Time")
    )
    hub.add_cube(
        "acme",
        "sales",
        [time_dim, Dimension("region", size, label="Region")],
        data=rng.random((size, size)),
    )

    hub.add_tenant("globex", api_key="globex-key")
    hub.add_cube(
        "globex",
        "telemetry",
        [
            Dimension("tick", size, label="Tick"),
            Dimension("sensor", size, label="Sensor"),
        ],
        data=rng.random((size, size)),
    )
    return hub
