"""WSGI JSON API over a :class:`~repro.server.hub.ServingHub`.

Stdlib-only Slicer-style endpoints:

========================  ======  =====================================
``/cubes``                GET     the tenant's cube names
``/cube/<name>/model``    GET     logical model (dimensions,
                                  hierarchies, measures)
``/cube/<name>/aggregate``  GET   ``cut`` / ``drilldown`` aggregation
``/cube/<name>/update``   POST    SHIFT-SPLIT delta batch
``/metrics``              GET     Prometheus text exposition
``/healthz``              GET     breaker / journal / queue / replication
``/debug/queries``        GET     flight recorder + recent request log
``/debug/trace``          GET     live trace (admin key only)
``/debug/heat``           GET     tile-heat map
``/replica/stream``       GET     shipped journal frames (admin key)
``/replica/snapshot``     GET     full arena snapshot (admin key)
``/replica/state``        GET     logical state + version (admin key)
``/replica/promote``      POST    promote this replica (admin key)
========================  ======  =====================================

Replication: the ``/replica/*`` routes require the **admin** key.  A
replica hub polls its primary's ``/replica/stream`` with its applied
seq as the ``after`` cursor; the response is an
``application/octet-stream`` of zero or more frames plus
``X-Repro-Next-Seq`` (the primary's next group seq — the follower's
staleness bound follows) and ``X-Repro-State-Version`` (bumped on
provisioning or directory growth; the follower refetches
``/replica/state`` when it moves).  ``X-Repro-Snapshot-Needed: 1``
means the cursor predates the retention window — re-bootstrap from
``/replica/snapshot``.  Updates sent to a non-primary are answered
**503** with a ``Retry-After`` header.

Tenancy: every data route requires an API key (``X-API-Key`` header or
``api_key`` query parameter) resolving to a tenant; ``/metrics`` and
``/healthz`` are operator routes and skip auth.  A per-request
deadline (``X-Deadline-Ms`` header or ``deadline_ms`` parameter)
propagates into the engine; queries that blow it are answered from
resident blocks with a sound ``error_bound`` and the response is
**206 Partial Content** — a slow tenant degrades instead of stalling.

Telemetry: every request carries a W3C-style trace — an incoming
``traceparent`` header's trace id is continued, otherwise a fresh one
is minted — and the response echoes a ``traceparent`` built from that
trace id, so a client can join its logs to the hub's.  Each request is
appended to the hub's structured request log (tenant, cube, cut,
status, deadline slack, I/O receipt) and each *data-route* request is
offered to the flight recorder behind ``/debug/queries``.  The
``/debug/queries``, ``/debug/trace`` and ``/debug/heat`` routes are
authenticated: the hub's admin key sees everything, a tenant key sees
its own slice (and never the raw trace).

Status mapping: schema/parse errors 400, unknown key 401, unknown
cube 404, tenant quota 429, global backpressure 503, engine errors
500.  Responses are always JSON; floats serialise via ``repr`` so a
client reading the body sees bit-identical values to a direct
:class:`~repro.service.engine.QueryEngine` caller.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.obs.reqlog import (
    make_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.obs.tracer import IO_FIELDS, get_tracer
from repro.olap.schema import SchemaError
from repro.server import persist
from repro.server.hub import (
    CubeState,
    ReplicaReadOnlyError,
    ServingHub,
    Tenant,
)
from repro.server.slicer import (
    compile_aggregate,
    parse_cuts,
    parse_drilldowns,
)
from repro.service.engine import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    AdmissionError,
    QuotaError,
)
from repro.service.queries import RangeSumQuery

__all__ = ["ServingApp"]

_REASONS = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MAX_BODY_BYTES = 8 << 20


class _HttpError(Exception):
    """Internal: unwound into a JSON error response."""

    def __init__(
        self, code: int, message: str, headers: Optional[list] = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.headers = headers or []


class ServingApp:
    """The WSGI callable; one instance serves one hub."""

    def __init__(self, hub: ServingHub, max_cells: int = 4096) -> None:
        self._hub = hub
        self._max_cells = max_cells

    # ------------------------------------------------------------------
    # WSGI entry
    # ------------------------------------------------------------------

    def __call__(self, environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        params = {
            key: values[-1]
            for key, values in parse_qs(
                environ.get("QUERY_STRING", "")
            ).items()
        }
        # Trace propagation: continue the caller's trace id when a
        # valid traceparent arrives, mint one otherwise.  The response
        # always carries a traceparent whose span id is this request.
        incoming = parse_traceparent(environ.get("HTTP_TRACEPARENT"))
        trace_id = incoming[0] if incoming else new_trace_id()
        request_span_hex = new_span_id()
        ctx: dict = {
            "tenant": None,
            "cube": None,
            "cut": None,
            "deadline_s": None,
            "status": None,
        }
        started = time.perf_counter()
        before = self._hub.stats.snapshot()
        # Handler threads are spawned by the threading HTTP server, so
        # there is no ambient span to inherit: the request span roots
        # its own trace and the engine's workers parent query spans
        # under it through the submission's trace_parent.
        with get_tracer().span(
            "http.request",
            parent=None,
            method=method,
            path=path,
            trace_id=trace_id,
        ) as span:
            try:
                code, payload, content_type = self._dispatch(
                    method, path, params, environ, ctx
                )
            except _HttpError as exc:
                code, payload, content_type = (
                    exc.code,
                    {"error": exc.message},
                    None,
                )
                ctx.setdefault("headers", []).extend(exc.headers)
            except ReplicaReadOnlyError as exc:
                # Writes during replica service / a promotion window:
                # tell the client exactly when to retry.
                code, payload, content_type = (
                    503,
                    {"error": str(exc), "role": exc.role},
                    None,
                )
                ctx.setdefault("headers", []).append(
                    ("Retry-After", str(max(1, round(exc.retry_after_s))))
                )
            except SchemaError as exc:
                code, payload, content_type = 400, {"error": str(exc)}, None
            except QuotaError as exc:
                code, payload, content_type = 429, {"error": str(exc)}, None
            except AdmissionError as exc:
                code, payload, content_type = 503, {"error": str(exc)}, None
            except Exception as exc:  # never leak a traceback as HTML
                code, payload, content_type = 500, {"error": repr(exc)}, None
            span.set(status_code=code)
        if content_type is None:
            content_type = "application/json"
            body = json.dumps(payload).encode("utf-8")
        elif isinstance(payload, bytes):
            body = payload
        else:
            body = payload.encode("utf-8")
        self._hub.metrics.counter(
            "http_requests", {"code": code, "method": method}
        ).inc()
        self._record_request(
            method, path, trace_id, incoming, code, started, before, ctx
        )
        reason = _REASONS.get(code, "Unknown")
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
            (
                "Traceparent",
                make_traceparent(trace_id, request_span_hex),
            ),
        ]
        headers.extend(ctx.get("headers", []))
        start_response(f"{code} {reason}", headers)
        return [body]

    def _record_request(
        self, method, path, trace_id, incoming, code, started, before, ctx
    ) -> None:
        """Append the finished request to the request log and offer
        data-route receipts to the flight recorder.

        The I/O receipt is the shared-arena stats delta over this
        request's wall time; under concurrent requests it is an
        *approximation* (other requests' charges overlap) — exact
        attribution is the tracer's job.
        """
        wall_s = time.perf_counter() - started
        delta = self._hub.stats.delta_since(before)
        deadline_s = ctx.get("deadline_s")
        record = {
            "trace_id": trace_id,
            "parent_span": incoming[1] if incoming else None,
            "method": method,
            "path": path,
            "code": code,
            "tenant": ctx.get("tenant"),
            "cube": ctx.get("cube"),
            "cut": ctx.get("cut"),
            "status": ctx.get("status") or "",
            "wall_s": wall_s,
            "deadline_s": deadline_s,
            "deadline_slack_s": (
                deadline_s - wall_s if deadline_s is not None else None
            ),
            "io": {field: getattr(delta, field) for field in IO_FIELDS},
        }
        reqlog = self._hub.request_log
        if reqlog is not None:
            reqlog.record(**record)
        flightrec = self._hub.flight_recorder
        if flightrec is not None and path.startswith("/cube/"):
            flightrec.record(record)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _dispatch(
        self, method: str, path: str, params: Dict[str, str], environ, ctx
    ) -> Tuple[int, object, Optional[str]]:
        if path == "/healthz":
            self._require(method, "GET")
            health = self._hub.healthz()
            code = 503 if health["status"] == "shedding" else 200
            return code, health, None
        if path == "/metrics":
            self._require(method, "GET")
            return 200, self._hub.prometheus(), "text/plain; version=0.0.4"
        if path.startswith("/debug/"):
            self._require(method, "GET")
            return self._debug(path, params, environ, ctx)
        if path.startswith("/replica/"):
            return self._replica(method, path, params, environ, ctx)
        tenant = self._authenticate(params, environ)
        ctx["tenant"] = tenant.name
        if path == "/cubes":
            self._require(method, "GET")
            return (
                200,
                {
                    "tenant": tenant.name,
                    "cubes": sorted(tenant.cubes),
                },
                None,
            )
        parts = [part for part in path.split("/") if part]
        if len(parts) == 3 and parts[0] == "cube":
            state = self._cube(tenant, parts[1])
            ctx["cube"] = state.name
            if parts[2] == "model":
                self._require(method, "GET")
                return 200, state.model(), None
            if parts[2] == "aggregate":
                self._require(method, "GET")
                return self._aggregate(state, params, environ, ctx) + (
                    None,
                )
            if parts[2] == "update":
                self._require(method, "POST")
                return self._update(state, environ, ctx) + (None,)
        raise _HttpError(404, f"no route for {path!r}")

    # ------------------------------------------------------------------
    # replication routes
    # ------------------------------------------------------------------

    def _require_admin(self, params: Dict[str, str], environ) -> None:
        api_key = environ.get("HTTP_X_API_KEY") or params.get("api_key")
        if not api_key or api_key != self._hub.admin_key:
            raise _HttpError(
                401, "/replica/* routes require the admin key"
            )

    def _replica(
        self, method: str, path: str, params: Dict[str, str], environ, ctx
    ) -> Tuple[int, object, Optional[str]]:
        self._require_admin(params, environ)
        if path == "/replica/stream":
            self._require(method, "GET")
            return self._replica_stream(params, ctx)
        if path == "/replica/snapshot":
            self._require(method, "GET")
            return 200, self._hub.snapshot_payload(), None
        if path == "/replica/state":
            self._require(method, "GET")
            return (
                200,
                {
                    "state": persist.hub_to_state(self._hub),
                    "version": self._hub.state_version,
                },
                None,
            )
        if path == "/replica/promote":
            self._require(method, "POST")
            return 200, self._hub.promote(), None
        raise _HttpError(404, f"no route for {path!r}")

    def _replica_stream(
        self, params: Dict[str, str], ctx
    ) -> Tuple[int, object, Optional[str]]:
        shipper = self._hub.shipper
        if shipper is None:
            raise _HttpError(
                403,
                f"this hub (role={self._hub.role!r}) is not shipping "
                f"its journal; start it with --replicate",
            )
        try:
            after = int(params.get("after", "0"))
        except ValueError:
            raise _HttpError(
                400, f"after must be an integer, got {params['after']!r}"
            ) from None
        follower_id = params.get("follower", "")
        headers = ctx.setdefault("headers", [])
        # shipper.snapshot() reads last_seq under the shipper lock; a
        # bare attribute read here races the commit path's writer
        last_seq = int(shipper.snapshot()["last_seq"])
        headers.append(("X-Repro-Next-Seq", str(last_seq + 1)))
        headers.append(
            ("X-Repro-State-Version", str(self._hub.state_version))
        )
        frames = shipper.frames_since(after)
        if frames is None:
            # The cursor predates the retention window: nothing we can
            # stream reconnects this follower — it must re-snapshot.
            headers.append(("X-Repro-Snapshot-Needed", "1"))
            return 200, b"", "application/octet-stream"
        if follower_id:
            # The cursor doubles as the follower's ack: everything at
            # or below it has been durably applied on the follower.
            shipper.ack(follower_id, after)
        return 200, b"".join(frames), "application/octet-stream"

    # ------------------------------------------------------------------
    # debug routes
    # ------------------------------------------------------------------

    def _debug(
        self, path: str, params: Dict[str, str], environ, ctx
    ) -> Tuple[int, object, Optional[str]]:
        scope = self._debug_scope(params, environ, ctx)
        if path == "/debug/queries":
            return 200, self._hub.debug_queries(tenant=scope), None
        if path == "/debug/trace":
            if scope is not None:
                # The raw trace spans every tenant; a tenant key must
                # not see its neighbours' queries.
                raise _HttpError(
                    403, "/debug/trace requires the admin key"
                )
            return 200, self._hub.debug_trace(), None
        if path == "/debug/heat":
            return 200, self._hub.debug_heat(tenant=scope), None
        raise _HttpError(404, f"no route for {path!r}")

    def _debug_scope(
        self, params: Dict[str, str], environ, ctx
    ) -> Optional[str]:
        """Admin key -> ``None`` (unfiltered); tenant key -> the
        tenant's name (filtered view); anything else -> 401."""
        api_key = environ.get("HTTP_X_API_KEY") or params.get("api_key")
        if api_key and api_key == self._hub.admin_key:
            return None
        tenant = self._hub.resolve_key(api_key)
        if tenant is None:
            raise _HttpError(
                401,
                "debug routes need the admin key or a tenant API key "
                "(X-API-Key header or api_key parameter)",
            )
        ctx["tenant"] = tenant.name
        return tenant.name

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"method {method} not allowed")

    def _authenticate(self, params: Dict[str, str], environ) -> Tenant:
        api_key = environ.get("HTTP_X_API_KEY") or params.get("api_key")
        tenant = self._hub.resolve_key(api_key)
        if tenant is None:
            raise _HttpError(
                401,
                "unknown or missing API key (X-API-Key header or "
                "api_key parameter)",
            )
        return tenant

    @staticmethod
    def _cube(tenant: Tenant, name: str) -> CubeState:
        state = tenant.cubes.get(name)
        if state is None:
            raise _HttpError(
                404,
                f"tenant {tenant.name!r} has no cube {name!r}; have "
                f"{sorted(tenant.cubes)}",
            )
        return state

    @staticmethod
    def _deadline_s(params: Dict[str, str], environ) -> Optional[float]:
        raw = environ.get("HTTP_X_DEADLINE_MS") or params.get("deadline_ms")
        if raw is None:
            return None
        try:
            deadline_ms = float(raw)
        except ValueError:
            raise _HttpError(
                400, f"deadline_ms must be a number, got {raw!r}"
            ) from None
        if deadline_ms < 0:
            raise _HttpError(400, "deadline_ms must be >= 0")
        return deadline_ms / 1000.0

    # ------------------------------------------------------------------
    # aggregate
    # ------------------------------------------------------------------

    def _aggregate(
        self, state: CubeState, params: Dict[str, str], environ, ctx
    ) -> Tuple[int, dict]:
        cuts = parse_cuts(params.get("cut", ""))
        drilldowns = parse_drilldowns(params.get("drilldown", ""))
        plan = compile_aggregate(
            state.cube.dimensions, cuts, drilldowns, self._max_cells
        )
        deadline_s = self._deadline_s(params, environ)
        ctx["cut"] = params.get("cut", "")
        ctx["deadline_s"] = deadline_s
        queries = [
            RangeSumQuery(cell.lows, cell.highs) for cell in plan.cells
        ]
        engine = state.engine
        if deadline_s is None:
            batch = engine.execute_batch(queries)
            results = list(batch.results)
        else:
            # Deadline-bound requests bypass the batch prefetch wave:
            # the prefetch optimises throughput but performs deadline-
            # blind device I/O; the per-query path lets an expired
            # query degrade to resident blocks instead.
            submissions = []
            try:
                for query in queries:
                    submissions.append(
                        engine.submit(query, timeout=deadline_s)
                    )
            except AdmissionError:
                for submission in submissions:
                    submission.result()
                raise
            results = [submission.result() for submission in submissions]

        rows: List[dict] = []
        worst = STATUS_OK
        dimension_names = [
            dimension.name for dimension in state.cube.dimensions
        ]
        for cell, result in zip(plan.cells, results):
            row: dict = {
                "paths": dict(cell.paths),
                "box": {
                    name: [low, high]
                    for name, low, high in zip(
                        dimension_names, cell.lows, cell.highs
                    )
                },
                "status": result.status,
                "count": cell.cell_count,
            }
            if result.status in (STATUS_OK, STATUS_DEGRADED):
                value = float(result.value)
                row["sum"] = value
                row["avg"] = value / cell.cell_count
            if result.status == STATUS_DEGRADED:
                row["error_bound"] = result.error_bound
            if result.error:
                row["error"] = result.error
            rows.append(row)
            if result.status == STATUS_ERROR:
                worst = STATUS_ERROR
            elif result.status != STATUS_OK and worst != STATUS_ERROR:
                worst = result.status
        if worst == STATUS_ERROR:
            code = 500
        elif worst == STATUS_OK:
            code = 200
        else:
            code = 206
        ctx["status"] = worst
        return code, {
            "cube": state.name,
            "cut": params.get("cut", ""),
            "drilldown": list(plan.drilled),
            "status": worst,
            "cells": rows,
        }

    # ------------------------------------------------------------------
    # update
    # ------------------------------------------------------------------

    def _update(self, state: CubeState, environ, ctx) -> Tuple[int, dict]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            raise _HttpError(400, "update needs a JSON body")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(
                413, f"update body exceeds {_MAX_BODY_BYTES} bytes"
            )
        raw = environ["wsgi.input"].read(length)
        try:
            body = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            raise _HttpError(400, "update body is not valid JSON") from None
        if (
            not isinstance(body, dict)
            or "deltas" not in body
            or not isinstance(body.get("corner"), dict)
        ):
            raise _HttpError(
                400,
                'update body must be {"deltas": [...], '
                '"corner": {dim: value}}',
            )
        try:
            io_delta = self._hub.update(
                state.tenant, state.name, body["deltas"], body["corner"]
            )
        except (ValueError, KeyError) as exc:
            raise _HttpError(400, str(exc)) from None
        ctx["status"] = STATUS_OK
        return 200, {"applied": True, "io": io_delta}
