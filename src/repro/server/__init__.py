"""HTTP OLAP serving layer: a Slicer-style JSON API over wavelet cubes.

See ``docs/serving.md`` for the API reference, the cut/drilldown
grammar, and the tenancy + degraded-response model.
"""

from repro.server.app import ServingApp
from repro.server.hub import CubeState, ServingHub, Tenant
from repro.server.http import (
    ThreadingWSGIServer,
    make_server,
    serve,
    spawn,
)
from repro.server.slicer import (
    AggregateCell,
    AggregatePlan,
    Cut,
    Drilldown,
    compile_aggregate,
    parse_cuts,
    parse_drilldowns,
)

__all__ = [
    "AggregateCell",
    "AggregatePlan",
    "CubeState",
    "Cut",
    "Drilldown",
    "ServingApp",
    "ServingHub",
    "Tenant",
    "ThreadingWSGIServer",
    "compile_aggregate",
    "make_server",
    "parse_cuts",
    "parse_drilldowns",
    "serve",
    "spawn",
]
