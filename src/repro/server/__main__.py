"""``python -m repro.server`` — serve the demo hub over HTTP.

Binds the stdlib threading WSGI server on ``--host``/``--port`` with
the two-tenant demo hub (see :mod:`repro.server.demo`); the tenant API
keys are printed at startup.  ``scripts/serve.py`` is a thin wrapper
around this entry point.

With ``--data-dir`` the arena lives in ``<dir>/arena.blocks`` on a
file-backed mmap device: the first launch bulk-loads the demo cubes
into it, and every later launch **reopens** the stored coefficients
(updates applied over HTTP survive restarts bit-identically).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.server.demo import build_demo_hub
from repro.server.http import serve
from repro.server.hub import ServingHub
from repro.server.persist import state_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve the demo wavelet-cube hub over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8950)
    parser.add_argument(
        "--size",
        type=int,
        default=64,
        help="cube edge (power of two, default 64)",
    )
    parser.add_argument(
        "--pool-blocks",
        type=int,
        default=64,
        help="shared buffer-pool budget in blocks",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="demo data seed"
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help=(
            "persist the arena to <dir>/arena.blocks; an existing "
            "hub directory is reopened instead of reloading the demo "
            "data"
        ),
    )
    parser.add_argument(
        "--reqlog",
        action="store_true",
        help=(
            "also write each structured request-log record to stderr "
            "as one JSON line"
        ),
    )
    parser.add_argument(
        "--replicate",
        action="store_true",
        help=(
            "ship committed journal groups so replicas can follow "
            "(serves /replica/stream and /replica/snapshot)"
        ),
    )
    parser.add_argument(
        "--replica-of",
        default=None,
        metavar="URL",
        help=(
            "start as a read-only replica of the primary at URL: "
            "bootstrap from its /replica/snapshot, then follow its "
            "journal stream; serves aggregates with a surfaced "
            "staleness bound and rejects updates with 503"
        ),
    )
    parser.add_argument(
        "--primary-key",
        default="demo-admin-key",
        help="admin key of the primary (for --replica-of)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.1,
        help="replica poll interval in seconds",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help=(
            "inject read faults at this rate under the journal "
            "(FaultyBlockDevice; engines get a bounded retry policy)"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="deterministic seed for --fault-rate injection",
    )
    args = parser.parse_args(argv)

    reqlog_stream = sys.stderr if args.reqlog else None
    if args.replica_of is not None:
        if args.data_dir is not None:
            parser.error("--replica-of and --data-dir are exclusive")
        hub = ServingHub(
            pool_blocks=args.pool_blocks,
            reqlog_stream=reqlog_stream,
            admin_key="demo-admin-key",
            replica_of=args.replica_of,
            primary_api_key=args.primary_key,
            replica_poll_s=args.poll_interval,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
        )
        print(f"following primary at {args.replica_of}")
    elif args.data_dir is not None and os.path.exists(
        state_path(args.data_dir)
    ):
        hub = ServingHub(
            pool_blocks=args.pool_blocks,
            data_dir=args.data_dir,
            reqlog_stream=reqlog_stream,
            admin_key="demo-admin-key",
            replicate=args.replicate,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
        )
        print(f"reopened hub from {args.data_dir}")
    else:
        hub = build_demo_hub(
            seed=args.seed,
            size=args.size,
            pool_blocks=args.pool_blocks,
            data_dir=args.data_dir,
            reqlog_stream=reqlog_stream,
            replicate=args.replicate,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
        )
    for tenant_name in hub.tenants():
        tenant = hub.tenant(tenant_name)
        print(
            f"tenant {tenant_name}: api_key={tenant.api_key} "
            f"cubes={sorted(tenant.cubes)}"
        )
    print(f"debug admin key: {hub.admin_key}")
    print(f"serving on http://{args.host}:{args.port}")
    try:
        serve(hub, host=args.host, port=args.port)
    finally:
        hub.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
