"""Stdlib threading HTTP server for the serving app.

``wsgiref``'s reference server is single-threaded; mixing in
:class:`socketserver.ThreadingMixIn` gives the one-thread-per-request
model of ``http.server.ThreadingHTTPServer`` while keeping the WSGI
contract, so :class:`~repro.server.app.ServingApp` stays portable to
any production WSGI container.  Request handler threads are daemonic:
a hub shutdown never blocks on a stuck client.
"""

from __future__ import annotations

import threading
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer

from repro.server.app import ServingApp
from repro.server.hub import ServingHub

__all__ = [
    "ThreadingWSGIServer",
    "QuietHandler",
    "make_server",
    "serve",
    "spawn",
]


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One handler thread per request over the WSGI app."""

    daemon_threads = True
    # Benchmarks open many short-lived connections in bursts; the
    # default listen backlog of 5 drops SYNs under that load.
    request_queue_size = 128


class QuietHandler(WSGIRequestHandler):
    """Handler that keeps access logs out of stderr.

    Request accounting lives in the hub's metrics registry (the
    ``http_requests`` counter) and the per-request trace span — a
    second, unstructured log stream adds noise, not signal.
    """

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass


def make_server(
    hub: ServingHub, host: str = "127.0.0.1", port: int = 0
) -> ThreadingWSGIServer:
    """Bind a threading server for ``hub`` (port 0 = ephemeral)."""
    server = ThreadingWSGIServer((host, port), QuietHandler)
    server.set_app(ServingApp(hub))
    return server


def serve(hub: ServingHub, host: str = "127.0.0.1", port: int = 8950):
    """Serve ``hub`` forever (returns only on KeyboardInterrupt)."""
    server = make_server(hub, host, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        hub.close()


def spawn(hub: ServingHub, host: str = "127.0.0.1", port: int = 0):
    """Start a server on a background thread; returns
    ``(server, thread)``.  Used by tests and the smoke driver; the
    caller owns shutdown (``server.shutdown()`` then ``hub.close()``).
    """
    server = make_server(hub, host, port)
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-http-server",
        daemon=True,
    )
    thread.start()
    return server, thread
