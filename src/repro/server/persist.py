"""Hub state (de)serialisation for ``--data-dir`` persistence.

The :class:`~repro.storage.mmap_device.MmapBlockDevice` persists the
raw coefficient blocks; everything *around* them — which tenants
exist, which cubes they own, each cube's dimension schema and, most
importantly, each cube's tile directory (tile key → block id) — lives
in one JSON sidecar, ``hub_state.json``, next to the arena file.  A
restarted hub reconstructs the serving stack from the sidecar and
adopts the on-disk blocks without reading (or re-loading) a single
coefficient.

Tile keys of the standard tiling are nested tuples of ints
(per-axis ``(band, root)`` pairs); JSON has no tuples, so keys are
round-tripped through nested lists.  The sidecar is written with a
write-to-temp-then-rename so a crash mid-save leaves the previous
state intact.

Durability contract: ``ServingHub.update`` flushes every dirty frame
through the journal into the arena and msyncs the mapping *before*
rewriting the sidecar, so any **acknowledged** batch survives process
death and power loss.  The write-ahead journal itself is in-memory
(the simulation's separate journal device) and is not replayable
across process death — a crash while a batch is still in flight can
leave that one batch partially applied; block-level integrity is then
re-established on reopen by rebuilding the CRC summaries from the
arena's actual content.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Hashable

from repro.olap.schema import Dimension, Hierarchy, Level

__all__ = [
    "STATE_FILENAME",
    "ARENA_FILENAME",
    "dimension_from_state",
    "dimension_to_state",
    "key_from_state",
    "key_to_state",
    "load_state",
    "save_state",
    "state_path",
]

STATE_FILENAME = "hub_state.json"
ARENA_FILENAME = "arena.blocks"
_STATE_VERSION = 1


def state_path(data_dir: str) -> str:
    return os.path.join(data_dir, STATE_FILENAME)


# ----------------------------------------------------------------------
# schema round-trip
# ----------------------------------------------------------------------


def dimension_to_state(dimension: Dimension) -> dict:
    """A loss-free ``Dimension`` record (unlike ``to_dict``, which
    injects the implicit binary hierarchy for display)."""
    return {
        "name": dimension.name,
        "size": dimension.size,
        "low": dimension.low,
        "high": dimension.high,
        "label": dimension.label,
        "hierarchies": [
            {
                "name": hierarchy.name,
                "levels": [
                    {"name": level.name, "fanout": level.fanout}
                    for level in hierarchy.levels
                ],
            }
            for hierarchy in dimension.hierarchies
        ],
    }


def dimension_from_state(record: dict) -> Dimension:
    return Dimension(
        record["name"],
        record["size"],
        low=record["low"],
        high=record["high"],
        label=record["label"],
        hierarchies=tuple(
            Hierarchy(
                entry["name"],
                [
                    Level(level["name"], level["fanout"])
                    for level in entry["levels"]
                ],
            )
            for entry in record["hierarchies"]
        ),
    )


# ----------------------------------------------------------------------
# tile-key round-trip
# ----------------------------------------------------------------------


def key_to_state(key: Hashable):
    if isinstance(key, tuple):
        return [key_to_state(part) for part in key]
    return key


def key_from_state(record):
    if isinstance(record, list):
        return tuple(key_from_state(part) for part in record)
    return record


# ----------------------------------------------------------------------
# whole-hub state
# ----------------------------------------------------------------------


def hub_to_state(hub) -> dict:
    """Snapshot ``hub``'s logical state (not the block contents)."""
    tenants = []
    for tenant_name in hub.tenants():
        tenant = hub.tenant(tenant_name)
        cubes = []
        for cube_name in sorted(tenant.cubes):
            state = tenant.cubes[cube_name]
            directory: Dict[Hashable, int] = (
                state.cube.store.tile_store.directory()
            )
            cubes.append(
                {
                    "name": cube_name,
                    "dimensions": [
                        dimension_to_state(dimension)
                        for dimension in state.cube.dimensions
                    ],
                    "directory": sorted(
                        (
                            [key_to_state(key), block_id]
                            for key, block_id in directory.items()
                        ),
                        key=lambda pair: pair[1],
                    ),
                }
            )
        tenants.append(
            {
                "name": tenant_name,
                "api_key": tenant.api_key,
                "max_inflight": tenant.max_inflight,
                "num_workers": tenant.num_workers,
                "default_deadline_s": tenant.default_deadline_s,
                "cubes": cubes,
            }
        )
    return {"version": _STATE_VERSION, "tenants": tenants}


def save_state(hub, data_dir: str) -> str:
    """Atomically write the sidecar; returns its path."""
    path = state_path(data_dir)
    temporary = path + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(hub_to_state(hub), handle, indent=1, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    _fsync_dir(data_dir)
    return path


def _fsync_dir(data_dir: str) -> None:
    """Flush the directory entry so the rename itself survives power
    loss — ``os.replace`` alone only orders the data, not the name.
    Best-effort on platforms where directories cannot be opened."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        dirfd = os.open(data_dir, flags)
    except OSError:
        return
    try:
        os.fsync(dirfd)
    except OSError:
        pass
    finally:
        os.close(dirfd)


def load_state(data_dir: str) -> dict:
    path = state_path(data_dir)
    with open(path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    version = state.get("version")
    if version != _STATE_VERSION:
        raise ValueError(
            f"{path}: unsupported hub state version {version!r} "
            f"(expected {_STATE_VERSION})"
        )
    return state
