"""Slicer-style aggregation grammar over wavelet cube schemas.

The HTTP layer speaks the dialect of Cubes' Slicer server: a **cut**
restricts the queried box and a **drilldown** splits it into member
cells of a named hierarchy.  This module owns both the textual grammar
and its compilation into :class:`~repro.service.queries.RangeSumQuery`
boxes — the serving handler stays a thin parser-to-engine bridge.

Grammar
-------

``cut`` — ``|``-separated list, one entry per dimension::

    dim:lo-hi          range cut in domain units (inclusive)
    dim@hier:p.p.p     hierarchy cut: member path, ordinals joined
                       by "."; the named hierarchy must exist on the
                       dimension ("binary" always does)

``drilldown`` — ``,``-separated list::

    dim                one level below the dimension's cut (or the
                       root when uncut)
    dim:level          to the named or numbered (1-based) level
    dim@hier:level     same, through a named hierarchy

Every member of every hierarchy level spans a *dyadic* cell range
(enforced by :mod:`repro.olap.schema`), so each drill cell compiles to
exactly one SHIFT-SPLIT range sum at Lemma 2 boundary cost.
Malformed input raises :class:`~repro.olap.schema.SchemaError`, which
the HTTP layer maps to a 400 with the message verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.olap.schema import Dimension, SchemaError

__all__ = [
    "Cut",
    "Drilldown",
    "AggregateCell",
    "AggregatePlan",
    "parse_cuts",
    "parse_drilldowns",
    "compile_aggregate",
]


@dataclass(frozen=True)
class Cut:
    """One parsed cut: a domain range or a hierarchy member path."""

    dimension: str
    hierarchy: Optional[str] = None
    path: Optional[Tuple[int, ...]] = None
    low: Optional[float] = None
    high: Optional[float] = None

    @property
    def is_path(self) -> bool:
        return self.path is not None


@dataclass(frozen=True)
class Drilldown:
    """One parsed drilldown target."""

    dimension: str
    hierarchy: Optional[str] = None
    level: Optional[str] = None  # level name or 1-based depth


@dataclass(frozen=True)
class AggregateCell:
    """One output row: a box plus the member paths that selected it."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]
    paths: Tuple[Tuple[str, str], ...]  # (dimension, "p.p.p")

    @property
    def cell_count(self) -> int:
        count = 1
        for low, high in zip(self.lows, self.highs):
            count *= high - low + 1
        return count


@dataclass(frozen=True)
class AggregatePlan:
    """Everything an aggregate request compiles to."""

    cells: Tuple[AggregateCell, ...]
    drilled: Tuple[str, ...]  # dimension names, output order


def _split_range(spec: str, dimension: str) -> Tuple[float, float]:
    """Parse ``lo-hi`` (both may be negative / scientific notation).

    The separator is ambiguous with a unary minus, so every interior
    ``-`` is tried as the split point until both sides parse.
    """
    for index, char in enumerate(spec):
        if char != "-" or index == 0:
            continue
        if spec[index - 1] in "eE-":
            continue
        left, right = spec[:index], spec[index + 1 :]
        try:
            return float(left), float(right)
        except ValueError:
            continue
    try:
        value = float(spec)
    except ValueError:
        raise SchemaError(
            f"cut on {dimension!r}: cannot parse range {spec!r} "
            f"(expected lo-hi in domain units)"
        ) from None
    return value, value


def _split_target(entry: str, what: str) -> Tuple[str, Optional[str], str]:
    """Split ``dim[@hier][:spec]`` -> (dim, hier, spec)."""
    head, sep, spec = entry.partition(":")
    dimension, at, hierarchy = head.partition("@")
    if not dimension:
        raise SchemaError(f"{what} entry {entry!r} names no dimension")
    if at and not hierarchy:
        raise SchemaError(
            f"{what} entry {entry!r} has an empty hierarchy name"
        )
    if sep and not spec:
        raise SchemaError(f"{what} entry {entry!r} has an empty spec")
    return dimension, (hierarchy or None), spec


def parse_cuts(text: str) -> List[Cut]:
    """Parse a ``cut=`` parameter value (may be empty)."""
    cuts: List[Cut] = []
    for entry in text.split("|"):
        entry = entry.strip()
        if not entry:
            continue
        dimension, hierarchy, spec = _split_target(entry, "cut")
        if not spec:
            raise SchemaError(
                f"cut on {dimension!r} has no range or path"
            )
        if hierarchy is not None:
            path: List[int] = []
            for part in spec.split("."):
                try:
                    path.append(int(part))
                except ValueError:
                    raise SchemaError(
                        f"cut on {dimension!r}: path component "
                        f"{part!r} is not an integer"
                    ) from None
            cuts.append(
                Cut(dimension, hierarchy=hierarchy, path=tuple(path))
            )
        else:
            low, high = _split_range(spec, dimension)
            cuts.append(Cut(dimension, low=low, high=high))
    return cuts


def parse_drilldowns(text: str) -> List[Drilldown]:
    """Parse a ``drilldown=`` parameter value (may be empty)."""
    drills: List[Drilldown] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        dimension, hierarchy, spec = _split_target(entry, "drilldown")
        drills.append(
            Drilldown(dimension, hierarchy=hierarchy, level=spec or None)
        )
    return drills


def _resolve_depth(hierarchy, level: Optional[str], base: int) -> int:
    """Target depth of a drilldown: named level, 1-based number, or
    one below the cut."""
    if level is None:
        depth = base + 1
    else:
        try:
            depth = int(level)
        except ValueError:
            depth = hierarchy.level_index(level) + 1
    if not base < depth <= hierarchy.depth:
        raise SchemaError(
            f"drilldown depth {depth} on hierarchy {hierarchy.name!r} "
            f"must be in ({base}, {hierarchy.depth}]"
        )
    return depth


def compile_aggregate(
    dimensions: Sequence[Dimension],
    cuts: Sequence[Cut],
    drilldowns: Sequence[Drilldown],
    max_cells: int = 4096,
) -> AggregatePlan:
    """Compile parsed cuts + drilldowns into range-sum boxes.

    Returns one :class:`AggregateCell` per member of the drilldown
    cross product (a single cell when nothing is drilled), each box
    the intersection of the member's dyadic range with the cut box.
    """
    by_name: Dict[str, int] = {
        dimension.name: axis for axis, dimension in enumerate(dimensions)
    }
    boxes: List[Tuple[int, int]] = [
        (0, dimension.size - 1) for dimension in dimensions
    ]
    cut_paths: Dict[str, Cut] = {}
    seen_cut: set = set()
    for cut in cuts:
        axis = by_name.get(cut.dimension)
        if axis is None:
            raise SchemaError(
                f"unknown dimension {cut.dimension!r}; have "
                f"{sorted(by_name)}"
            )
        if cut.dimension in seen_cut:
            raise SchemaError(
                f"dimension {cut.dimension!r} is cut more than once"
            )
        seen_cut.add(cut.dimension)
        dimension = dimensions[axis]
        if cut.is_path:
            boxes[axis] = dimension.path_to_range(
                cut.path, hierarchy=cut.hierarchy
            )
            cut_paths[cut.dimension] = cut
        else:
            low, high = dimension.to_cell_range(cut.low, cut.high)
            boxes[axis] = (low, high)

    members_per_dim: List[List[Tuple[str, Tuple[int, int]]]] = []
    drilled: List[str] = []
    for drill in drilldowns:
        axis = by_name.get(drill.dimension)
        if axis is None:
            raise SchemaError(
                f"unknown dimension {drill.dimension!r}; have "
                f"{sorted(by_name)}"
            )
        if drill.dimension in drilled:
            raise SchemaError(
                f"dimension {drill.dimension!r} is drilled more than once"
            )
        dimension = dimensions[axis]
        base_cut = cut_paths.get(drill.dimension)
        if drill.dimension in seen_cut and base_cut is None:
            raise SchemaError(
                f"dimension {drill.dimension!r} has a range cut; "
                f"drilldown needs a hierarchy cut (dim@hier:path) "
                f"or no cut at all"
            )
        if (
            base_cut is not None
            and drill.hierarchy is not None
            and base_cut.hierarchy != drill.hierarchy
        ):
            raise SchemaError(
                f"dimension {drill.dimension!r} is cut through "
                f"hierarchy {base_cut.hierarchy!r} but drilled through "
                f"{drill.hierarchy!r}"
            )
        hierarchy_name = (
            drill.hierarchy
            if drill.hierarchy is not None
            else (base_cut.hierarchy if base_cut is not None else None)
        )
        hierarchy = dimension.hierarchy(hierarchy_name)
        base_path = tuple(base_cut.path) if base_cut is not None else ()
        depth = _resolve_depth(hierarchy, drill.level, len(base_path))
        ordinal_axes = [
            range(hierarchy.levels[level].fanout)
            for level in range(len(base_path), depth)
        ]
        members: List[Tuple[str, Tuple[int, int]]] = []
        for suffix in product(*ordinal_axes):
            path = base_path + suffix
            label = ".".join(str(part) for part in path)
            members.append((label, hierarchy.path_to_cells(path)))
        members_per_dim.append(members)
        drilled.append(drill.dimension)

    total = 1
    for members in members_per_dim:
        total *= len(members)
    if total > max_cells:
        raise SchemaError(
            f"drilldown produces {total} cells; the limit is "
            f"{max_cells} — cut deeper or drill fewer levels"
        )

    cells: List[AggregateCell] = []
    for combo in product(*members_per_dim):
        lows = [low for low, __ in boxes]
        highs = [high for __, high in boxes]
        paths: List[Tuple[str, str]] = []
        for name, (label, (low, high)) in zip(drilled, combo):
            axis = by_name[name]
            lows[axis], highs[axis] = low, high
            paths.append((name, label))
        cells.append(
            AggregateCell(tuple(lows), tuple(highs), tuple(paths))
        )
    return AggregatePlan(cells=tuple(cells), drilled=tuple(drilled))
