"""SHIFT-SPLIT: I/O efficient maintenance of wavelet-transformed
multidimensional data.

A from-scratch reproduction of Jahangiri, Sacharidis and Shahabi
(SIGMOD 2005).  The package layers:

* :mod:`repro.wavelet`  — Haar DWT, standard & non-standard forms,
  wavelet-tree navigation;
* :mod:`repro.tiling`   — the optimal coefficient-to-disk-block
  allocation (Section 3);
* :mod:`repro.storage`  — simulated block device, buffer pool, and the
  dense/tiled coefficient stores all algorithms run against;
* :mod:`repro.core`     — the SHIFT and SPLIT operations (Section 4);
* :mod:`repro.transform`, :mod:`repro.append`, :mod:`repro.streams`,
  :mod:`repro.reconstruct` — the four maintenance scenarios
  (Section 5, Results 1-6);
* :mod:`repro.datasets`, :mod:`repro.experiments` — synthetic data and
  the harness regenerating every table and figure of Section 6.
"""

from repro.append import StandardAppender
from repro.olap import Dimension, WaveletCube
from repro.core import (
    apply_chunk_nonstandard,
    apply_chunk_standard,
    axis_shift_split,
    extract_region_nonstandard,
    extract_region_standard,
    shift_target_indices,
    split_contributions,
    split_weights,
)
from repro.reconstruct import (
    point_query_nonstandard,
    point_query_single_tile,
    point_query_standard,
    populate_scalings_standard,
    range_sum_nonstandard,
    range_sum_standard,
    reconstruct_box_nonstandard,
    reconstruct_box_standard,
)
from repro.storage import (
    DenseNonStandardStore,
    DenseStandardStore,
    IOStats,
    NaiveBlockedStandardStore,
    TiledNonStandardStore,
    TiledStandardStore,
)
from repro.service import (
    PointQuery,
    QueryEngine,
    RangeSumQuery,
    RegionQuery,
    ShardedBufferPool,
)
from repro.streams import (
    NonStandardStreamSynopsis,
    StandardStreamSynopsis,
    StreamSynopsis1D,
    TopKTracker,
)
from repro.synopsis import (
    best_k_nonstandard,
    best_k_standard,
    relative_l2_error,
)
from repro.transform import (
    transform_nonstandard_chunked,
    transform_standard_chunked,
    vitter_transform_standard,
)
from repro.update import (
    batch_update_nonstandard,
    batch_update_standard,
    naive_update_standard,
)
from repro.wavelet import (
    haar_dwt,
    haar_idwt,
    nonstandard_dwt,
    nonstandard_idwt,
    standard_dwt,
    standard_idwt,
)

__version__ = "1.0.0"

__all__ = [
    "DenseNonStandardStore",
    "DenseStandardStore",
    "Dimension",
    "IOStats",
    "NaiveBlockedStandardStore",
    "NonStandardStreamSynopsis",
    "PointQuery",
    "QueryEngine",
    "RangeSumQuery",
    "RegionQuery",
    "ShardedBufferPool",
    "StandardAppender",
    "StandardStreamSynopsis",
    "StreamSynopsis1D",
    "TiledNonStandardStore",
    "TiledStandardStore",
    "TopKTracker",
    "WaveletCube",
    "apply_chunk_nonstandard",
    "apply_chunk_standard",
    "axis_shift_split",
    "batch_update_nonstandard",
    "batch_update_standard",
    "best_k_nonstandard",
    "best_k_standard",
    "extract_region_nonstandard",
    "extract_region_standard",
    "haar_dwt",
    "haar_idwt",
    "nonstandard_dwt",
    "naive_update_standard",
    "nonstandard_idwt",
    "point_query_nonstandard",
    "point_query_single_tile",
    "point_query_standard",
    "populate_scalings_standard",
    "range_sum_nonstandard",
    "range_sum_standard",
    "relative_l2_error",
    "reconstruct_box_nonstandard",
    "reconstruct_box_standard",
    "shift_target_indices",
    "split_contributions",
    "split_weights",
    "standard_dwt",
    "standard_idwt",
    "transform_nonstandard_chunked",
    "transform_standard_chunked",
    "vitter_transform_standard",
]
