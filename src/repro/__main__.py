"""Command-line entry point: run the reproduction's experiments.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig11            # run one experiment
    python -m repro run all [--fast]     # run everything
"""

from __future__ import annotations

import argparse
import sys

from repro import experiments

_EXPERIMENTS = {
    "table1": experiments.table1.main,
    "table2": experiments.table2.main,
    "fig11": experiments.fig11.main,
    "fig12": experiments.fig12.main,
    "fig13": experiments.fig13.main,
    "stream-buffer": experiments.stream_buffer.main,
    "stream-space": experiments.stream_space.main,
    "stream-quality": experiments.stream_quality.main,
    "reconstruct": experiments.reconstruct_exp.main,
    "query-cost": experiments.query_cost.main,
    "update": experiments.update_exp.main,
    "sparse": experiments.sparse.main,
    "compression": experiments.compression.main,
    "ablation-tiling": experiments.ablation_tiling.main,
    "ablation-zorder": experiments.ablation_zorder.main,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "SHIFT-SPLIT reproduction — regenerate the paper's tables "
            "and figures"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run = subparsers.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="experiment id (see 'list')",
    )
    run.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down sizes for 'all'",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0
    if args.experiment == "all":
        experiments.run_all(fast=args.fast)
        return 0
    _EXPERIMENTS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
