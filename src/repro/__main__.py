"""Command-line entry point: run the reproduction's experiments.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig11            # run one experiment
    python -m repro run all [--fast]     # run everything
    python -m repro serve-replay         # replay a query workload
                                         # through the service layer
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import experiments

_EXPERIMENTS = {
    "table1": experiments.table1.main,
    "table2": experiments.table2.main,
    "fig11": experiments.fig11.main,
    "fig12": experiments.fig12.main,
    "fig13": experiments.fig13.main,
    "stream-buffer": experiments.stream_buffer.main,
    "stream-space": experiments.stream_space.main,
    "stream-quality": experiments.stream_quality.main,
    "reconstruct": experiments.reconstruct_exp.main,
    "query-cost": experiments.query_cost.main,
    "update": experiments.update_exp.main,
    "sparse": experiments.sparse.main,
    "compression": experiments.compression.main,
    "ablation-tiling": experiments.ablation_tiling.main,
    "ablation-zorder": experiments.ablation_zorder.main,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "SHIFT-SPLIT reproduction — regenerate the paper's tables "
            "and figures"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run = subparsers.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="experiment id (see 'list')",
    )
    run.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down sizes for 'all'",
    )
    serve = subparsers.add_parser(
        "serve-replay",
        help=(
            "replay a mixed query workload through the concurrent "
            "service layer and print a JSON metrics report"
        ),
    )
    serve.add_argument(
        "--size", type=int, default=64, help="per-axis domain size"
    )
    serve.add_argument(
        "--ndim", type=int, default=2, help="domain dimensionality"
    )
    serve.add_argument(
        "--block-edge", type=int, default=8, help="tile edge B"
    )
    serve.add_argument(
        "--pool-capacity", type=int, default=64, help="buffer-pool blocks"
    )
    serve.add_argument(
        "--points", type=int, default=32, help="point queries"
    )
    serve.add_argument(
        "--range-sums", type=int, default=16, help="range-sum queries"
    )
    serve.add_argument(
        "--regions", type=int, default=16, help="region queries"
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="engine worker threads"
    )
    serve.add_argument(
        "--shards", type=int, default=4, help="buffer-pool shards"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=64, help="admission queue bound"
    )
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument(
        "--dataset",
        choices=["zipf", "random"],
        default="zipf",
        help="synthetic dataset family",
    )
    serve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "trace the replay and write Chrome trace-event JSON to "
            "PATH (load it in ui.perfetto.dev); the report gains "
            "per-query I/O receipts and a lossless-attribution check"
        ),
    )
    serve.add_argument(
        "--prom",
        metavar="PATH",
        default=None,
        help=(
            "also write the engine metrics in Prometheus text "
            "exposition format to PATH (implies tracing)"
        ),
    )
    serve.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help=(
            "inject transient read faults at this probability during "
            "the batched phase and serve through the self-healing "
            "engine (retry + breaker + degraded reads); the report "
            "gains a 'fault' section classifying every answer"
        ),
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the injected fault stream",
    )
    return parser


def _serve_replay(args: argparse.Namespace) -> int:
    from repro.service import replay

    report = replay(
        shape=(args.size,) * args.ndim,
        block_edge=args.block_edge,
        pool_capacity=args.pool_capacity,
        points=args.points,
        range_sums=args.range_sums,
        regions=args.regions,
        num_workers=args.workers,
        num_shards=args.shards,
        queue_depth=args.queue_depth,
        dataset=args.dataset,
        seed=args.seed,
        trace=bool(args.trace or args.prom),
        trace_path=args.trace,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
    )
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(report["prometheus"])
    print(json.dumps(report, indent=2))
    ok = report["results_match"]
    if "trace" in report:
        ok = ok and report["trace"]["lossless"]
    return 0 if ok else 1


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0
    if args.command == "serve-replay":
        return _serve_replay(args)
    if args.experiment == "all":
        experiments.run_all(fast=args.fast)
        return 0
    _EXPERIMENTS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
