"""Bounded retry with exponential backoff and deterministic jitter.

Transient I/O faults (a flaky read, a momentary stall) should never
surface to a query when one more attempt would succeed — but unbounded
retries turn a dead device into an unbounded latency tail.
:class:`RetryPolicy` bounds both: at most ``max_attempts`` tries, with
exponentially growing, jittered sleeps in between.  Jitter draws from
a seeded :class:`random.Random`, so a policy's delay sequence replays
exactly in tests; the sleep function is injectable so unit tests run
at full speed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

__all__ = ["RetryPolicy", "Retrier"]


@dataclass(frozen=True)
class RetryPolicy:
    """Configuration of a bounded backoff-retry loop.

    ``retry_on`` is the tuple of exception types worth retrying —
    transient I/O failures.  Anything else propagates immediately
    (retrying a ``ValueError`` only hides a bug).
    """

    max_attempts: int = 4
    base_delay_s: float = 0.001
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (IOError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based): the capped
        exponential delay, scaled by a jitter factor drawn uniformly
        from ``[1 - jitter, 1 + jitter]``."""
        raw = min(
            self.max_delay_s,
            self.base_delay_s * (self.multiplier ** (attempt - 1)),
        )
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass
class Retrier:
    """A policy bound to a jitter stream, a sleep clock and counters.

    One engine holds one :class:`Retrier`; its counters aggregate every
    retried operation the engine performed.
    """

    policy: RetryPolicy
    sleep: Callable[[float], None] = time.sleep
    rng: Optional[random.Random] = None
    retries: int = 0
    gave_up: int = 0

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = random.Random(self.policy.seed)

    def call(
        self,
        fn: Callable[[], object],
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> object:
        """Run ``fn`` under the policy.

        Retryable exceptions trigger backoff-sleep and another attempt
        (``on_retry(attempt, exc)`` is notified first); the last
        attempt's exception propagates.  Non-retryable exceptions
        propagate immediately.
        """
        rng = self.rng
        assert rng is not None  # __post_init__ always seeds one
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except self.policy.retry_on as exc:
                if attempt >= self.policy.max_attempts:
                    self.gave_up += 1
                    raise
                self.retries += 1
                if on_retry is not None:
                    on_retry(attempt, exc)
                delay = self.policy.delay_for(attempt, rng)
                if delay > 0:
                    self.sleep(delay)
