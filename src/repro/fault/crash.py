"""Deterministic crash-point injection for the crash-matrix harness.

A crash-consistency proof needs to kill the system *at every
intermediate state* of a protected operation and show that recovery
restores an uncorrupted store.  Sprinkling ``if armed: raise``
branches through the journal code would be fragile; instead the
journalled write path calls :meth:`CrashPlan.point` at every site
where a real process could die — after a torn journal append, between
commit and apply, mid block apply, before the checkpoint — and a
:class:`CrashPlan` decides whether that particular site fires.

The matrix protocol is two-phase and fully deterministic:

1. **Survey** — run the workload once with an unarmed plan
   (``CrashPlan()``): nothing raises, but every visited site is
   counted and named.
2. **Matrix** — for each ``i < survey.count``, rerun the identical
   workload with ``CrashPlan(armed=i)``; site ``i`` raises
   :class:`InjectedCrash` (after executing its optional ``before``
   callback, which models the torn half-write the dying process left
   behind), the harness "restarts" and recovers, and the recovered
   store is checked bit-for-bit.

``CrashPlan`` is deliberately not thread-safe: crash matrices drive
single-threaded flushes, where site ordering is reproducible.
"""

from __future__ import annotations

from typing import Callable, List, Optional

__all__ = ["CrashPlan", "InjectedCrash"]


class InjectedCrash(RuntimeError):
    """Raised by an armed :class:`CrashPlan` to simulate process death.

    Everything the "process" held in memory (buffer-pool frames, tile
    directories, half-finished batches) must be treated as lost by the
    harness; only the block device and the journal bytes survive.
    """


class CrashPlan:
    """Counts crash sites and raises at the single armed one.

    Parameters
    ----------
    armed:
        Zero-based index of the site that fires, or ``None`` to only
        survey (count and name sites without ever raising).
    """

    def __init__(self, armed: Optional[int] = None) -> None:
        self.armed = armed
        self.count = 0
        self.site_names: List[str] = []
        self.fired_at: Optional[str] = None

    def point(
        self, name: str, before: Optional[Callable[[], None]] = None
    ) -> None:
        """Visit one crash site.

        When this site is armed, ``before`` (the torn-state callback —
        e.g. "append only half the journal record") runs first and
        :class:`InjectedCrash` is raised; otherwise the site is merely
        counted.
        """
        index = self.count
        self.count += 1
        self.site_names.append(name)
        if self.armed is not None and index == self.armed:
            if before is not None:
                before()
            self.fired_at = name
            raise InjectedCrash(f"injected crash at site {index} ({name})")
