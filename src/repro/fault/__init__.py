"""Failure model: injectable faults, crash points, retry, breaking.

The paper's maintenance scenarios assume a wavelet store that lives on
disk across sessions; a long-lived store needs a failure model.  This
package supplies the *offensive* half — deterministic, seedable fault
injection (:class:`FaultyBlockDevice`) and crash-point scheduling
(:class:`CrashPlan`) — plus the generic resilience primitives the
service layer composes: bounded backoff retry (:class:`RetryPolicy`)
and a per-device :class:`CircuitBreaker`.  The *defensive* durability
half (checksums, write-ahead journal, recovery) lives in
:mod:`repro.storage.journal`, and graceful degradation in
:mod:`repro.storage.degrade`.

Everything here is off unless explicitly wired in: no store, engine or
experiment constructs a fault layer by default, so fault-free pipelines
are bit-identical and IOStats-identical with or without this package
imported.
"""

from repro.fault.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.fault.crash import CrashPlan, InjectedCrash
from repro.fault.device import (
    FAULT_KINDS,
    FaultRule,
    FaultyBlockDevice,
    InjectedIOError,
)
from repro.fault.retry import Retrier, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "CrashPlan",
    "FAULT_KINDS",
    "FaultRule",
    "FaultyBlockDevice",
    "InjectedCrash",
    "InjectedIOError",
    "Retrier",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]
