"""Replication chaos harness: kill the primary at every shipper/commit
interleaving and prove the promoted follower.

The storage crash matrix (:mod:`tests.test_crash_matrix`) proves a
*restarted primary* recovers to a committed prefix.  This harness
proves the replication analogue: a **promoted follower** is always
bit-identical to a committed golden prefix that covers every
*acknowledged* flush — no acked update is ever lost, at any kill
point.

Protocol sites per group (in order): the journal's own
``journal.data.{torn,appended}`` / ``journal.commit.{torn,appended}``,
then — because shipping fires inside ``append_commit``, *before* the
batch is acknowledged — the shipper's ``ship.framed``,
``ship.sink0.torn`` (half a frame delivered), ``ship.sink0.sent``,
then ``group.committed``, ``apply.{torn,applied}``,
``checkpoint.done``.  A workload of B update batches multiplies the
sites by B+1 flushes.

Invariant checked per kill site, with ``acked`` = flushes that
returned before the kill and ``golden[k]`` = the fault-free device
image after the k-th flush:

* ``follower.finalize()`` (the promotion step: discard torn tail,
  replay, full checksum scan) reports **clean**;
* the follower arena is bit-identical to ``golden[k]`` for some
  ``k >= acked`` — i.e. a committed prefix at least as new as every
  acknowledged write.

The matrix also asserts outcome *variety*: early sites must land
exactly at the ack horizon, sites past frame delivery must land ahead
of it — otherwise the interleavings were not actually exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np
import numpy.typing as npt

from ..replica.follower import FollowerEngine
from ..replica.shipper import JournalShipper
from ..storage.block_device import BlockDevice
from ..storage.journal import JournaledDevice
from ..storage.tiled import TiledStandardStore
from ..update.batch import batch_update_standard
from ..wavelet.standard import standard_dwt
from .crash import CrashPlan, InjectedCrash

__all__ = ["ChaosResult", "ChaosReport", "run_chaos_matrix"]

FloatArray = npt.NDArray[np.float64]
MakeDevice = Callable[[], Any]


@dataclass
class ChaosResult:
    """One kill site's verdict."""

    site: int
    site_name: str
    acked: int
    matched_prefix: int  # the k with follower == golden[k]
    clean: bool
    discarded_bytes: int

    @property
    def acked_loss(self) -> bool:
        """True when an acknowledged flush is missing on the promoted
        follower — the violation this harness exists to catch."""
        return self.matched_prefix < self.acked

    @property
    def outcome(self) -> str:
        return "ahead" if self.matched_prefix > self.acked else "at_ack"


@dataclass
class ChaosReport:
    """The whole matrix, ready for tests / smoke / bench consumers."""

    sites: int
    flushes: int
    results: List[ChaosResult] = field(default_factory=list)

    @property
    def acked_losses(self) -> List[ChaosResult]:
        return [result for result in self.results if result.acked_loss]

    @property
    def unclean(self) -> List[ChaosResult]:
        return [result for result in self.results if not result.clean]

    @property
    def outcomes(self) -> Set[str]:
        return {result.outcome for result in self.results}

    @property
    def ok(self) -> bool:
        return (
            not self.acked_losses
            and not self.unclean
            and self.outcomes == {"at_ack", "ahead"}
        )

    def summary(self) -> Dict[str, object]:
        return {
            "sites": self.sites,
            "sites_run": len(self.results),
            "flushes": self.flushes,
            "acked_losses": len(self.acked_losses),
            "unclean_scans": len(self.unclean),
            "outcomes": sorted(self.outcomes),
            "ok": self.ok,
        }


# ----------------------------------------------------------------------
# deterministic workload
# ----------------------------------------------------------------------


def _deltas(batch_index: int, seed: int) -> FloatArray:
    rng = np.random.default_rng(seed + 1000 * (batch_index + 1))
    return rng.normal(size=(4, 4))


def _offsets(batch_index: int, shape: Tuple[int, ...]) -> Tuple[int, ...]:
    # Update corners must align to the delta grid (multiples of 4).
    return tuple(
        4 * ((batch_index + axis) % (extent // 4))
        for axis, extent in enumerate(shape)
    )


class _Run:
    """One primary + one in-process follower, wired ship-before-ack."""

    def __init__(
        self,
        make_device: Optional[MakeDevice],
        shape: Tuple[int, ...],
        block_edge: int,
        crash: Optional[CrashPlan],
    ) -> None:
        slots = block_edge ** len(shape)
        primary_raw = make_device() if make_device is not None else None
        self.store = TiledStandardStore(
            shape,
            block_edge=block_edge,
            pool_capacity=256,
            device=primary_raw,
        )
        holder: Dict[str, Any] = {}

        def wrap(device: Any) -> Any:
            holder["journaled"] = JournaledDevice(device)
            return holder["journaled"]

        self.store.tile_store.wrap_device(wrap)
        self.device: JournaledDevice = holder["journaled"]
        follower_raw = (
            make_device() if make_device is not None else None
        ) or BlockDevice(slots)
        self.follower = FollowerEngine(follower_raw)
        self.shipper = JournalShipper(self.device)
        self.shipper.attach(self.follower.feed)
        self.device.crash = crash
        self.shipper.crash = crash
        self.acked = 0

    def workload(
        self, shape: Tuple[int, ...], batches: int, seed: int
    ) -> None:
        coefficients = standard_dwt(
            np.random.default_rng(seed).normal(size=shape)
        )
        for position in np.ndindex(*shape):
            self.store.write_point(position, float(coefficients[position]))
        self.store.flush()
        self.acked += 1
        for batch_index in range(batches):
            batch_update_standard(
                self.store,
                _deltas(batch_index, seed),
                _offsets(batch_index, shape),
            )
            self.store.flush()
            self.acked += 1


def _padded_equal(left: FloatArray, right: FloatArray) -> bool:
    """Bit-identity modulo trailing never-written (all-zero) blocks —
    a follower may not have allocated blocks the primary zeroed but
    never flushed coefficients into."""
    if left.shape[0] != right.shape[0]:
        rows = max(left.shape[0], right.shape[0])

        def pad(array: FloatArray) -> FloatArray:
            out = np.zeros((rows, array.shape[1]), dtype=array.dtype)
            out[: array.shape[0]] = array
            return out

        left, right = pad(left), pad(right)
    return bool(np.array_equal(left, right))


# ----------------------------------------------------------------------
# the matrix
# ----------------------------------------------------------------------


def run_chaos_matrix(
    make_device: Optional[MakeDevice] = None,
    shape: Tuple[int, ...] = (16, 16),
    block_edge: int = 4,
    batches: int = 3,
    seed: int = 7,
    site_stride: int = 1,
) -> ChaosReport:
    """Survey the kill sites, then rerun the workload once per site
    (every ``site_stride``-th for a reduced smoke matrix), promoting
    the surviving follower each time and checking the invariants.

    ``make_device`` returns a fresh raw arena per call (``None`` =
    in-memory); both the primary and the follower get one, so the
    matrix runs on the same backend end to end.
    """
    if site_stride < 1:
        raise ValueError(f"site_stride must be >= 1, got {site_stride}")
    # Phase 0: fault-free goldens — the device image after each flush.
    goldens: List[FloatArray] = []
    golden_run = _Run(make_device, shape, block_edge, crash=None)
    original_flush = golden_run.store.flush

    def capturing_flush() -> None:
        original_flush()
        # lint: uncounted (golden capture, not serving I/O)
        goldens.append(golden_run.device.dump_blocks())

    golden_run.store.flush = capturing_flush
    golden_run.workload(shape, batches, seed)
    flushes = golden_run.acked
    goldens.insert(0, np.zeros_like(goldens[0]))  # golden[0]: nothing acked
    # Golden follower must equal the final golden image (sanity of the
    # ship-before-ack wiring itself).
    golden_run.follower.finalize()
    # lint: uncounted (verification snapshot)
    golden_image = golden_run.follower.device.dump_blocks()
    if not _padded_equal(golden_image, goldens[-1]):
        raise AssertionError("fault-free follower diverged from the primary")

    # Phase 1: survey the sites.
    survey = CrashPlan()
    _Run(make_device, shape, block_edge, crash=survey).workload(
        shape, batches, seed
    )
    report = ChaosReport(sites=survey.count, flushes=flushes)

    # Phase 2: one kill per (strided) site.
    for site in range(0, survey.count, site_stride):
        plan = CrashPlan(armed=site)
        run = _Run(make_device, shape, block_edge, crash=plan)
        try:
            run.workload(shape, batches, seed)
        except InjectedCrash:
            pass
        else:
            raise AssertionError(
                f"armed site {site} ({survey.site_names[site]}) never "
                f"fired"
            )
        # The primary is dead.  Promote the follower: discard any torn
        # frame tail, replay ingested groups, full checksum scan.
        recovery = run.follower.finalize()
        # lint: uncounted (verification snapshot)
        final = run.follower.device.dump_blocks()
        matched = -1
        for k in range(len(goldens) - 1, -1, -1):
            if _padded_equal(final, goldens[k]):
                matched = k
                break
        if matched < 0:
            raise AssertionError(
                f"site {site} ({survey.site_names[site]}): promoted "
                f"follower matches NO committed golden prefix — "
                f"replication broke bit-identity"
            )
        report.results.append(
            ChaosResult(
                site=site,
                site_name=survey.site_names[site],
                acked=run.acked,
                matched_prefix=matched,
                clean=recovery.clean,
                discarded_bytes=recovery.discarded_bytes,
            )
        )
    return report
