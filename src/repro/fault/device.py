"""Fault-injecting wrapper over any block device.

The robustness layers (checksums, journal, retries, circuit breaker,
degraded reads) are only trustworthy if they can be exercised against
real failures, and a simulated device is the one place failures can be
injected *deterministically*.  :class:`FaultyBlockDevice` wraps any
object with the :class:`~repro.storage.block_device.BlockDevice`
surface and injects, by seeded probability or by explicit schedule:

* **read errors** — the read charges its I/O (the disk was hit) and
  raises :class:`InjectedIOError`;
* **write errors** — the write fails before touching the device;
* **torn writes** — the first half of the block is written, the rest
  keeps its old content, and the write raises: exactly the state a
  power cut mid-write leaves behind (checksums must catch it);
* **silent bit-flips** — one bit of the *returned copy* is flipped,
  modelling a transient bus/DRAM corruption (a retry re-reads clean
  data; only a checksum can detect the flip at all);
* **stalls** — an injected latency before the operation completes.

Fault decisions draw from one ``random.Random(seed)`` stream, so a
given configuration replays identically.  Every injection bumps a
per-kind counter and opens a ``fault.inject`` span on the active
tracer, so traces and Prometheus exports show exactly which faults a
run absorbed.  With all rates zero and no schedule the wrapper is
behaviour- and IOStats-transparent.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Tuple, cast

import numpy as np
import numpy.typing as npt

from repro.obs.tracer import get_tracer

FloatArray = npt.NDArray[np.float64]

__all__ = ["FaultRule", "FaultyBlockDevice", "InjectedIOError", "FAULT_KINDS"]

#: Fault kinds a :class:`FaultyBlockDevice` can inject.
FAULT_KINDS: Tuple[str, ...] = (
    "read_error",
    "write_error",
    "torn_write",
    "bitflip",
    "stall",
)

_READ_KINDS = {"read_error", "bitflip", "stall"}
_WRITE_KINDS = {"write_error", "torn_write", "stall"}


class InjectedIOError(IOError):
    """An I/O failure injected by :class:`FaultyBlockDevice`."""


@dataclass(frozen=True)
class FaultRule:
    """Inject ``kind`` at the ``index``-th operation of type ``op``.

    ``op`` is ``"read"`` or ``"write"``; ``index`` counts that
    operation kind from zero over the device's lifetime.  Scheduled
    rules fire regardless of the probabilistic rates, which makes
    single-fault unit tests exact ("fail the third write").
    """

    op: str
    index: int
    kind: str

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {self.op!r}")
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")
        allowed = _READ_KINDS if self.op == "read" else _WRITE_KINDS
        if self.kind not in allowed:
            raise ValueError(
                f"kind {self.kind!r} not valid for op {self.op!r} "
                f"(allowed: {sorted(allowed)})"
            )


class FaultyBlockDevice:
    """Deterministic fault injection over a block device.

    Parameters
    ----------
    inner:
        The wrapped device (typically a plain
        :class:`~repro.storage.block_device.BlockDevice`; durability
        layers go *above* this wrapper so checksums see the faults).
    seed:
        Seed of the fault-decision stream.
    read_error_rate / write_error_rate / torn_write_rate / bitflip_rate
    / stall_rate:
        Per-operation injection probabilities in ``[0, 1]``.
    stall_s:
        Injected latency per stall (seconds).
    broken_blocks:
        Block ids whose reads *always* fail — a persistent media error,
        the case retries cannot heal and degradation must absorb.
    schedule:
        Explicit :class:`FaultRule`\\ s, matched on operation index.
    sleep:
        Stall clock (injectable for tests).
    """

    def __init__(
        self,
        inner: Any,
        *,
        seed: int = 0,
        read_error_rate: float = 0.0,
        write_error_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        bitflip_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_s: float = 0.0,
        broken_blocks: Iterable[int] = (),
        schedule: Iterable[FaultRule] = (),
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        for name, rate in (
            ("read_error_rate", read_error_rate),
            ("write_error_rate", write_error_rate),
            ("torn_write_rate", torn_write_rate),
            ("bitflip_rate", bitflip_rate),
            ("stall_rate", stall_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self._inner = inner
        self._rng = random.Random(seed)
        self._read_error_rate = read_error_rate
        self._write_error_rate = write_error_rate
        self._torn_write_rate = torn_write_rate
        self._bitflip_rate = bitflip_rate
        self._stall_rate = stall_rate
        self._stall_s = stall_s
        self._sleep = sleep
        self.broken_blocks = set(int(b) for b in broken_blocks)
        self._schedule: Dict[Tuple[str, int], str] = {}
        for rule in schedule:
            self._schedule[(rule.op, rule.index)] = rule.kind
        self.reads_seen = 0
        self.writes_seen = 0
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # ------------------------------------------------------------------
    # pass-through surface
    # ------------------------------------------------------------------

    @property
    def inner(self) -> Any:
        return self._inner

    @property
    def stats(self) -> Any:
        return self._inner.stats

    @property
    def block_slots(self) -> int:
        return cast(int, self._inner.block_slots)

    @property
    def num_blocks(self) -> int:
        return cast(int, self._inner.num_blocks)

    def allocate(self) -> int:
        return cast(int, self._inner.allocate())

    def peek_block(self, block_id: int) -> FloatArray:
        return cast(FloatArray, self._inner.peek_block(block_id))

    def dump_blocks(self) -> FloatArray:
        return cast(FloatArray, self._inner.dump_blocks())

    def restore_blocks(self, blocks: FloatArray) -> None:
        self._inner.restore_blocks(blocks)

    def bytes_used(self, coefficient_bytes: int = 8) -> int:
        return cast(int, self._inner.bytes_used(coefficient_bytes))

    # ------------------------------------------------------------------
    # fault machinery
    # ------------------------------------------------------------------

    def _inject(self, kind: str, op: str, block_id: int) -> None:
        """Count one injection and surface it on the active tracer."""
        self.injected[kind] += 1
        with get_tracer().span(
            "fault.inject", kind=kind, op=op, block=block_id
        ):
            pass

    def _roll(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate

    def fault_counts(self) -> Dict[str, int]:
        """Per-kind injection tallies (a copy)."""
        return dict(self.injected)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # faulted I/O
    # ------------------------------------------------------------------

    def read_block(self, block_id: int) -> FloatArray:
        index = self.reads_seen
        self.reads_seen += 1
        scheduled = self._schedule.get(("read", index))
        if scheduled == "stall" or (
            scheduled is None and self._roll(self._stall_rate)
        ):
            self._inject("stall", "read", block_id)
            self._sleep(self._stall_s)
        # the attempt is real I/O
        data: FloatArray = self._inner.read_block(block_id)
        if (
            scheduled == "read_error"
            or block_id in self.broken_blocks
            or (scheduled is None and self._roll(self._read_error_rate))
        ):
            self._inject("read_error", "read", block_id)
            raise InjectedIOError(
                f"injected read error on block {block_id} (read #{index})"
            )
        if scheduled == "bitflip" or (
            scheduled is None and self._roll(self._bitflip_rate)
        ):
            self._inject("bitflip", "read", block_id)
            slot = self._rng.randrange(data.size)
            bit = self._rng.randrange(64)
            as_bits = data.view(np.uint64)
            as_bits[slot] ^= np.uint64(1) << np.uint64(bit)
        return data

    def write_block(self, block_id: int, data: FloatArray) -> None:
        index = self.writes_seen
        self.writes_seen += 1
        scheduled = self._schedule.get(("write", index))
        if scheduled == "stall" or (
            scheduled is None and self._roll(self._stall_rate)
        ):
            self._inject("stall", "write", block_id)
            self._sleep(self._stall_s)
        if scheduled == "write_error" or (
            scheduled is None and self._roll(self._write_error_rate)
        ):
            self._inject("write_error", "write", block_id)
            raise InjectedIOError(
                f"injected write error on block {block_id} (write #{index})"
            )
        if scheduled == "torn_write" or (
            scheduled is None and self._roll(self._torn_write_rate)
        ):
            self._inject("torn_write", "write", block_id)
            new = np.asarray(data, dtype=np.float64)
            # lint: uncounted (torn-write simulation reads surviving bytes)
            old = self._inner.peek_block(block_id)
            keep = new.size // 2
            torn = np.concatenate([new[:keep], old[keep:]])
            self._inner.write_block(block_id, torn)  # the torn state lands
            raise InjectedIOError(
                f"injected torn write on block {block_id} (write #{index}, "
                f"{keep}/{new.size} slots written)"
            )
        self._inner.write_block(block_id, data)
