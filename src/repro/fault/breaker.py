"""Per-device circuit breaker: shed load fast when the device is down.

Retries heal transient faults, but when a device is *persistently*
failing every query burns its full retry budget before erroring — the
admission queue backs up, latency explodes, and the engine collapses
exactly when it should be degrading.  The classic fix is a circuit
breaker:

* **closed** — normal operation; failures are counted, a success
  resets the count;
* **open** — after ``failure_threshold`` consecutive failures, calls
  are refused instantly (no device touch, no retry budget) until
  ``reset_timeout_s`` has passed;
* **half-open** — after the timeout, a limited number of probe calls
  are let through; one success closes the circuit, one failure
  re-opens it and restarts the timeout.

The breaker is thread-safe (worker threads report outcomes
concurrently) and clock-injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

__all__ = ["CircuitBreaker", "STATE_CLOSED", "STATE_OPEN", "STATE_HALF_OPEN"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: Numeric encoding for gauges (0 healthy .. 2 shedding).
STATE_CODES = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ValueError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED  # guarded-by: _lock
        self._consecutive_failures = 0  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock
        self._probes_in_flight = 0  # guarded-by: _lock
        # lifetime count of closed/half-open -> open trips
        self.opens = 0  # guarded-by: _lock
        self.shed = 0  # guarded-by: _lock (calls refused while open)

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def _maybe_half_open(self) -> None:  # lint: holds=_lock
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self._reset_timeout_s
        ):
            self._state = STATE_HALF_OPEN
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        Open: refused (and counted as shed).  Half-open: at most
        ``half_open_probes`` concurrent probes proceed.  Closed:
        always.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_HALF_OPEN:
                if self._probes_in_flight < self._half_open_probes:
                    self._probes_in_flight += 1
                    return True
                self.shed += 1
                return False
            self.shed += 1
            return False

    def on_success(self) -> None:
        """Report a successful device interaction."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._probes_in_flight = 0

    def on_failure(self) -> None:
        """Report a failed device interaction (after retries, if any)."""
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state == STATE_CLOSED
                and self._consecutive_failures >= self._failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:  # lint: holds=_lock
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self.opens += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "state_code": STATE_CODES[self._state],
                "opens": self.opens,
                "shed": self.shed,
                "consecutive_failures": self._consecutive_failures,
            }
